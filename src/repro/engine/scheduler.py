"""The task scheduler: locality-aware assignment with a free-core registry.

This reproduces the Spark component the paper had to teach about resizable
pools (section 5.3-5.4): "the Spark scheduler keeps track of all the
executors, how many cores they have been launched with and ... their current
number of free cores which controls how many new tasks should be assigned to
each executor."  Our driver keeps exactly that registry (``_pool_view`` and
``_assigned``) and updates it from two executor messages: task completions
and pool-resize notifications.

Fault recovery (FAULTS.md) extends the same machinery the way production
Spark does:

* every launch is an *attempt* ``(stage, partition, attempt_id)``; stale
  completions of killed attempts are simply ignored;
* a crashed attempt is retried with exponential backoff in simulated time,
  up to ``spark.task.maxFailures`` before the job aborts;
* losing an executor drops its live attempts and its registered map outputs;
  the lost outputs are recomputed through lineage (a *recovery wave* of the
  producing stages, deepest ancestors first) before the current stage
  resumes;
* with ``spark.speculation`` on, a task running beyond
  ``multiplier x median`` once the completion quantile is reached gets a
  duplicate attempt; the first finisher wins and the twin is killed.

None of this activates on a fault-free run: with no fault plan and
speculation off, the dispatch order, messages, and trace output are
bit-identical to the pre-fault scheduler.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.metrics import StageRecord
from repro.engine.rdd import ShuffleDependency
from repro.engine.stage import Stage, build_task_plan
from repro.engine.task import (
    PoolResized,
    Task,
    TaskAttempt,
    TaskFailed,
    TaskFinished,
)
from repro.simulation.core import Event
from repro.simulation.resources import LatencyChannel


class JobAbortedError(RuntimeError):
    """A job failed permanently (task out of retries, no executors left)."""


class TaskSetManager:
    """Pending tasks of one stage, indexed for locality-aware dispatch."""

    def __init__(self, tasks: List[Task]) -> None:
        self._unassigned: Set[int] = {task.partition for task in tasks}
        self._by_node: Dict[int, deque] = {}
        self._anywhere: deque = deque(tasks)
        for task in tasks:
            for node_id in task.preferred_nodes:
                self._by_node.setdefault(node_id, deque()).append(task)

    @property
    def pending(self) -> int:
        return len(self._unassigned)

    def pending_partitions(self) -> Set[int]:
        return set(self._unassigned)

    def add(self, task: Task) -> None:
        """Enqueue one more task (a retry or recovery recomputation)."""
        self._unassigned.add(task.partition)
        self._anywhere.append(task)
        for node_id in task.preferred_nodes:
            self._by_node.setdefault(node_id, deque()).append(task)

    def next_task(self, node_id: int) -> Optional[Task]:
        """Pop a pending task, preferring one with data local to ``node_id``."""
        local = self._by_node.get(node_id)
        for queue in (local, self._anywhere):
            if queue is None:
                continue
            while queue:
                task = queue.popleft()
                if task.partition in self._unassigned:
                    self._unassigned.discard(task.partition)
                    return task
        return None


@dataclass
class _Attempt:
    """One live launch of a task on one executor."""

    task: Task
    attempt: int
    executor_id: int
    launch_time: float
    speculative: bool = False


class _StageRun:
    """Book-keeping for the stage currently executing."""

    def __init__(self, stage: Stage, tasks: Optional[List[Task]],
                 record: StageRecord, done: Event) -> None:
        self.stage = stage
        self.manager = TaskSetManager(tasks if tasks is not None else [])
        self.record = record
        self.done = done
        self.results: Dict[int, Any] = {}
        self.trace_span = -1
        #: True when task plans could not be built yet because a consumed
        #: shuffle lost outputs before the stage started (see run_stage).
        self.tasks_pending_build = tasks is None
        # -- fault-recovery state (all inert on a fault-free run) ----------
        self.completed_partitions: Set[int] = set()
        self.attempt_seq: Dict[int, int] = {}
        self.running: Dict[int, Dict[int, _Attempt]] = {}
        self.failures: Dict[int, int] = {}
        self.retries_pending = 0
        #: Partitions whose relaunch waits for a recovery wave to finish.
        self.blocked: List[int] = []
        self.aborted = False
        # -- speculation ---------------------------------------------------
        self.spec_enabled = False
        self.spec_multiplier = 1.5
        self.spec_quantile = 0.75
        self.spec_timer_at: Optional[float] = None
        self.speculated: Set[int] = set()
        self.durations: List[float] = []


class _Recovery:
    """Lineage recomputation of shuffle outputs lost with an executor."""

    def __init__(self) -> None:
        #: Stages whose lost partitions cannot run yet (their own consumed
        #: shuffles are still incomplete), deepest ancestors first.
        self.waves: List[Tuple[Stage, Set[int]]] = []
        self.manager = TaskSetManager([])
        self.running: Dict[Tuple[int, int], _Attempt] = {}
        self.attempt_seq: Dict[Tuple[int, int], int] = {}
        self.failures: Dict[Tuple[int, int], int] = {}
        self.scheduled: Set[Tuple[int, int]] = set()
        self.outstanding = 0
        self.trace_span = -1


class TaskScheduler:
    """Driver-side scheduling across all executors."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.channel = LatencyChannel(
            ctx.sim, latency=float(ctx.conf.get("repro.control.latency"))
        )
        self._pool_view: Dict[int, int] = {}
        self._assigned: Dict[int, int] = {}
        self._run: Optional[_StageRun] = None
        self._recovery: Optional[_Recovery] = None

    @property
    def busy(self) -> bool:
        return self._run is not None

    def registered_pool_size(self, executor_id: int) -> int:
        """The driver's current belief about an executor's pool size."""
        return self._pool_view[executor_id]

    # -- stage execution ---------------------------------------------------------

    def run_stage(self, stage: Stage) -> Event:
        """Execute a stage; the returned event fires with ordered results."""
        if self._run is not None:
            raise RuntimeError("a stage is already running (stages are serial)")
        sim = self.ctx.sim
        record = StageRecord(
            stage_id=stage.stage_id,
            name=stage.rdd.name,
            is_io_marked=stage.is_io_marked,
            num_tasks=stage.num_tasks,
            start_time=sim.now,
        )
        self.ctx.recorder.begin_stage(record)
        missing: Dict[int, List[int]] = {}
        if self.ctx.faults is not None:
            self.ctx.faults.on_stage_start(stage)
            tracker = self.ctx.map_output_tracker
            for shuffle_id in self._consumed_shuffles(stage):
                if not tracker.is_complete(shuffle_id):
                    missing[shuffle_id] = tracker.missing_map_ids(shuffle_id)
        if missing:
            # An ancestor shuffle lost outputs between stages: defer building
            # this stage's plans until the recovery wave restores them.
            tasks = None
        else:
            tasks = [
                Task(stage, split, build_task_plan(self.ctx, stage, split))
                for split in range(stage.num_tasks)
            ]
        run = _StageRun(stage, tasks, record, sim.event())
        self._run = run
        conf = self.ctx.conf
        run.spec_enabled = bool(conf.get("spark.speculation"))
        if run.spec_enabled:
            run.spec_multiplier = float(conf.get("spark.speculation.multiplier"))
            run.spec_quantile = float(conf.get("spark.speculation.quantile"))
        tracer = self.ctx.tracer
        if tracer.enabled:
            run.trace_span = tracer.begin(
                "stage", stage.rdd.name,
                stage_id=stage.stage_id,
                num_tasks=stage.num_tasks,
                io_marked=stage.is_io_marked,
            )
        self.ctx.metrics.counter("scheduler.stages_submitted").inc()
        # Stage-start RPC: each executor consults its policy and reports the
        # initial pool size back to the driver's registry.
        for executor in self.ctx.executors:
            if not executor.alive:
                continue
            size = executor.begin_stage(stage, record)
            self._pool_view[executor.executor_id] = size
            self._assigned.setdefault(executor.executor_id, 0)
        self.ctx.monitoring.start_stage(stage, record)
        if missing:
            self._begin_recovery(missing)
        # First wave of launches goes out after one control-plane hop.
        sim.call_in(self.channel.latency, self._assign)
        return run.done

    def _assign(self) -> None:
        run = self._run
        if run is None or run.aborted:
            return
        if self._recovery is not None:
            self._assign_recovery()
            return
        progress = True
        while progress and run.manager.pending:
            progress = False
            for executor in self.ctx.executors:
                if not executor.alive:
                    continue
                executor_id = executor.executor_id
                free = self._pool_view[executor_id] - self._assigned[executor_id]
                if free <= 0:
                    continue
                task = run.manager.next_task(executor.node.node_id)
                if task is None:
                    break
                self._launch(run, task, executor)
                progress = True

    def _launch(self, run: _StageRun, task: Task, executor,
                speculative: bool = False) -> None:
        partition = task.partition
        attempt = run.attempt_seq.get(partition, 0)
        run.attempt_seq[partition] = attempt + 1
        run.running.setdefault(partition, {})[attempt] = _Attempt(
            task=task,
            attempt=attempt,
            executor_id=executor.executor_id,
            launch_time=self.ctx.sim.now,
            speculative=speculative,
        )
        self._assigned[executor.executor_id] += 1
        inv = self.ctx.invariants
        if inv is not None:
            inv.on_task_launched(self, executor.executor_id)
        self.channel.send(
            executor.launch_task, TaskAttempt(task, attempt, speculative)
        )
        self.ctx.metrics.counter("scheduler.tasks_launched").inc()

    def _assign_recovery(self) -> None:
        rec = self._recovery
        if rec is None:
            return
        progress = True
        while progress and rec.manager.pending:
            progress = False
            for executor in self.ctx.executors:
                if not executor.alive:
                    continue
                executor_id = executor.executor_id
                free = self._pool_view[executor_id] - self._assigned[executor_id]
                if free <= 0:
                    continue
                task = rec.manager.next_task(executor.node.node_id)
                if task is None:
                    break
                key = (task.stage.stage_id, task.partition)
                attempt = rec.attempt_seq.get(key, 1)
                rec.attempt_seq[key] = attempt + 1
                rec.running[key] = _Attempt(
                    task=task,
                    attempt=attempt,
                    executor_id=executor_id,
                    launch_time=self.ctx.sim.now,
                )
                self._assigned[executor_id] += 1
                inv = self.ctx.invariants
                if inv is not None:
                    inv.on_task_launched(self, executor_id)
                self.channel.send(executor.launch_task, TaskAttempt(task, attempt))
                self.ctx.metrics.counter("faults.recovery_tasks").inc()
                progress = True

    # -- executor messages ------------------------------------------------------------

    def handle_message(self, message) -> None:
        if isinstance(message, PoolResized):
            executor = self.ctx.executors[message.executor_id]
            if not executor.alive:
                return
            self._pool_view[message.executor_id] = message.pool_size
            inv = self.ctx.invariants
            if inv is not None:
                inv.on_pool_view_update(self, message.executor_id)
            tracer = self.ctx.tracer
            if tracer.enabled:
                tracer.instant(
                    "scheduler", "pool-resized",
                    executor_id=message.executor_id,
                    pool_size=message.pool_size,
                )
            self.ctx.metrics.counter("scheduler.resize_messages").inc()
            self._assign()
        elif isinstance(message, TaskFinished):
            self._on_task_finished(message)
        elif isinstance(message, TaskFailed):
            self._on_task_failed(message)
        else:
            raise TypeError(f"unknown scheduler message: {message!r}")

    def _on_task_finished(self, message: TaskFinished) -> None:
        run = self._run
        task = message.task
        if run is None or task.stage is not run.stage:
            if self._recovery is not None and task.stage is not None:
                # A recovery recomputation of an ancestor map stage.
                self._on_recovery_finished(message)
                return
            if self.ctx.faults is not None:
                return  # stale completion of a killed attempt; drop it
            raise RuntimeError("completion for a task of a stage that is not running")
        partition = task.partition
        attempts = run.running.get(partition, {})
        info = attempts.pop(message.attempt, None)
        if info is None:
            return  # attempt was killed (executor loss / speculation twin)
        self._assigned[message.executor_id] -= 1
        self._kill_twins(run, partition, attempts, winner=info)
        run.completed_partitions.add(partition)
        run.durations.append(self.ctx.sim.now - info.launch_time)
        if message.map_status is not None:
            self.ctx.map_output_tracker.register_map_output(
                run.stage.shuffle_dep.shuffle_id, message.map_status
            )
        else:
            run.results[partition] = message.result
        if not self._maybe_finish_stage(run):
            self._assign()
            if run.spec_enabled:
                self._check_speculation(run)

    def _kill_twins(self, run: _StageRun, partition: int,
                    twins: Dict[int, _Attempt], winner: _Attempt) -> None:
        """First finisher wins: kill the losing duplicate attempts."""
        if not twins:
            return
        for attempt_id, info in list(twins.items()):
            twins.pop(attempt_id)
            self._assigned[info.executor_id] -= 1
            executor = self.ctx.executors[info.executor_id]
            executor.kill_task(run.stage.stage_id, partition, attempt_id,
                               reason="speculation-lost")
        tracer = self.ctx.tracer
        name = "speculation-win" if winner.speculative else "speculation-loss"
        if tracer.enabled:
            tracer.instant(
                "speculation", name,
                stage_id=run.stage.stage_id,
                partition=partition,
                winner_executor=winner.executor_id,
                winner_attempt=winner.attempt,
            )
        self.ctx.metrics.counter(
            "speculation.wins" if winner.speculative else "speculation.losses"
        ).inc()

    def _on_task_failed(self, message: TaskFailed) -> None:
        run = self._run
        task = message.task
        if run is None or task.stage is not run.stage:
            if self._recovery is not None:
                self._on_recovery_failed(message)
            return  # else: crash of an attempt whose stage already resolved
        partition = task.partition
        attempts = run.running.get(partition, {})
        info = attempts.pop(message.attempt, None)
        if info is None:
            return  # already killed; nothing to retry
        self._assigned[message.executor_id] -= 1
        failures = run.failures.get(partition, 0) + 1
        run.failures[partition] = failures
        self.ctx.metrics.counter("scheduler.task_failures").inc()
        max_attempts = int(self.ctx.conf.get("spark.task.maxFailures"))
        if failures >= max_attempts:
            self._abort(
                run,
                f"task {run.stage.stage_id}.{partition} failed {failures} "
                f"times (spark.task.maxFailures={max_attempts}); "
                f"last reason: {message.reason}",
            )
            return
        if attempts:
            return  # a speculative twin is still running this partition
        delay = self._retry_delay(failures)
        run.retries_pending += 1
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant(
                "fault", "retry-scheduled",
                stage_id=run.stage.stage_id,
                partition=partition,
                attempt=message.attempt,
                failures=failures,
                delay=delay,
                reason=message.reason,
            )
        self.ctx.metrics.counter("scheduler.retries").inc()
        self.ctx.sim.call_at(
            self.ctx.sim.now + delay,
            lambda: self._retry_due(run, partition),
        )

    def _retry_delay(self, failures: int) -> float:
        base = float(self.ctx.conf.get("repro.faults.retry.backoff"))
        cap = float(self.ctx.conf.get("repro.faults.retry.backoff.max"))
        return min(base * (2.0 ** (failures - 1)), cap)

    def _retry_due(self, run: _StageRun, partition: int) -> None:
        if self._run is not run or run.aborted:
            return
        if self._recovery is not None:
            run.blocked.append(partition)
            return
        self._enqueue_retry(run, partition)
        self._assign()

    def _enqueue_retry(self, run: _StageRun, partition: int) -> None:
        """Rebuild the plan (tracker/DFS state may have moved) and requeue."""
        run.retries_pending -= 1
        task = Task(
            run.stage, partition, build_task_plan(self.ctx, run.stage, partition)
        )
        run.manager.add(task)

    def _requeue(self, run: _StageRun, partition: int) -> None:
        """Relaunch a partition whose attempt was killed (not its fault)."""
        if partition in run.completed_partitions:
            return
        if partition in run.running and run.running[partition]:
            return  # another attempt (speculative twin) is still going
        if partition in run.manager.pending_partitions():
            return
        run.retries_pending += 1
        if self._recovery is not None:
            run.blocked.append(partition)
        else:
            self._enqueue_retry(run, partition)

    # -- executor / node loss -----------------------------------------------------

    def on_executor_lost(self, executor, reason: str = "executor-loss") -> None:
        """Handle losing an executor: kill its work, recover its shuffle data.

        The executor's live attempts die with it; partitions they were
        running are relaunched elsewhere (an executor's death does not count
        against ``spark.task.maxFailures``).  Map outputs registered from its
        node are discarded and recomputed through lineage before the current
        stage resumes.
        """
        executor.alive = False
        node_id = executor.node.node_id
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant(
                "fault", "executor-loss",
                executor_id=executor.executor_id,
                node_id=node_id,
                reason=reason,
            )
        self.ctx.metrics.counter("faults.executor_losses").inc()
        executor.kill_all(reason)
        self._pool_view[executor.executor_id] = 0
        self._assigned[executor.executor_id] = 0
        if not any(ex.alive for ex in self.ctx.executors):
            run = self._run
            if run is not None:
                self._abort(run, "no executors left alive")
            return
        run = self._run
        orphaned: List[int] = []
        if run is not None:
            for partition, attempts in list(run.running.items()):
                for attempt_id, info in list(attempts.items()):
                    if info.executor_id == executor.executor_id:
                        attempts.pop(attempt_id)
                        orphaned.append(partition)
        rec = self._recovery
        if rec is not None:
            for key, info in list(rec.running.items()):
                if info.executor_id == executor.executor_id:
                    rec.running.pop(key)
                    rec.manager.add(info.task)
        # Lineage invalidation: shuffle outputs stored on the node are gone.
        lost = self.ctx.map_output_tracker.discard_node_outputs(node_id)
        if run is not None and lost:
            own = run.stage.shuffle_dep
            if own is not None and own.shuffle_id in lost:
                # The current map stage lost some of its own finished work.
                for map_id in lost.pop(own.shuffle_id):
                    run.completed_partitions.discard(map_id)
                    orphaned.append(map_id)
            if lost:
                self._begin_recovery(lost)
                # In-flight attempts fetching shuffle data from the dead node
                # read data that no longer exists: kill and relaunch them.
                for partition, attempts in list(run.running.items()):
                    for attempt_id, info in list(attempts.items()):
                        fetches = info.task.plan.shuffle_fetches
                        if any(src == node_id for src, _size in fetches):
                            attempts.pop(attempt_id)
                            self._assigned[info.executor_id] -= 1
                            self.ctx.executors[info.executor_id].kill_task(
                                run.stage.stage_id, partition, attempt_id,
                                reason="shuffle-data-lost",
                            )
                            orphaned.append(partition)
                # Queued tasks carry stale fetch plans too; rebuild them once
                # the recovery wave completes (see _finish_recovery).
        if run is not None:
            for partition in orphaned:
                self._requeue(run, partition)
            self._maybe_finish_stage(run)
        self._assign()

    # -- lineage recovery -----------------------------------------------------------

    def _consumed_shuffles(self, stage: Stage) -> List[int]:
        ids: List[int] = []
        for rdd in stage.pipeline_rdds():
            for dep in rdd.deps:
                if isinstance(dep, ShuffleDependency):
                    ids.append(dep.shuffle_id)
        return ids

    def _producing_stage(self, root: Stage, shuffle_id: int) -> Stage:
        stack = [root]
        seen: Set[int] = set()
        while stack:
            stage = stack.pop()
            if stage.stage_id in seen:
                continue
            seen.add(stage.stage_id)
            dep = stage.shuffle_dep
            if dep is not None and dep.shuffle_id == shuffle_id:
                return stage
            stack.extend(stage.parents)
        raise RuntimeError(
            f"no ancestor stage produces shuffle {shuffle_id}; "
            "lineage recovery is impossible"
        )

    def _begin_recovery(self, lost: Dict[int, List[int]]) -> None:
        """Queue recomputation of lost map outputs the current stage needs."""
        run = self._run
        if run is None:
            return
        rec = self._recovery if self._recovery is not None else _Recovery()
        added = 0
        seen: Set[int] = set()

        def need(stage: Stage) -> None:
            nonlocal added
            for shuffle_id in self._consumed_shuffles(stage):
                if shuffle_id not in lost or shuffle_id in seen:
                    continue
                seen.add(shuffle_id)
                producer = self._producing_stage(run.stage, shuffle_id)
                fresh = {
                    map_id for map_id in lost[shuffle_id]
                    if (producer.stage_id, map_id) not in rec.scheduled
                }
                if fresh:
                    for map_id in fresh:
                        rec.scheduled.add((producer.stage_id, map_id))
                    rec.waves.append((producer, fresh))
                    added += len(fresh)
                need(producer)

        need(run.stage)
        if added == 0:
            return
        rec.outstanding += added
        first = self._recovery is None
        self._recovery = rec
        tracer = self.ctx.tracer
        if first:
            if tracer.enabled:
                rec.trace_span = tracer.begin(
                    "recovery", "shuffle-recomputation",
                    stage_id=run.stage.stage_id,
                )
            # The wave's recomputation traffic would contaminate every
            # executor's MAPE-K interval in progress; discard them.
            for executor in self.ctx.executors:
                if executor.alive:
                    executor.notify_fault("recovery")
        self.ctx.metrics.counter("faults.recomputed_partitions").inc(added)
        self._promote_ready_waves()

    def _promote_ready_waves(self) -> None:
        rec = self._recovery
        if rec is None:
            return
        tracker = self.ctx.map_output_tracker
        still_waiting: List[Tuple[Stage, Set[int]]] = []
        for stage, partitions in rec.waves:
            ready = all(
                tracker.is_complete(shuffle_id)
                for shuffle_id in self._consumed_shuffles(stage)
            )
            if not ready:
                still_waiting.append((stage, partitions))
                continue
            for split in sorted(partitions):
                rec.manager.add(
                    Task(stage, split, build_task_plan(self.ctx, stage, split))
                )
        rec.waves = still_waiting

    def _on_recovery_finished(self, message: TaskFinished) -> None:
        rec = self._recovery
        task = message.task
        if rec is None:
            return  # stale completion from an attempt killed at loss time
        key = (task.stage.stage_id, task.partition)
        info = rec.running.pop(key, None)
        if info is None or info.attempt != message.attempt:
            if info is not None:
                rec.running[key] = info
            return
        self._assigned[message.executor_id] -= 1
        self.ctx.map_output_tracker.register_map_output(
            task.stage.shuffle_dep.shuffle_id, message.map_status
        )
        rec.outstanding -= 1
        self._promote_ready_waves()
        if rec.outstanding == 0 and not rec.waves:
            self._finish_recovery(rec)
        self._assign()

    def _on_recovery_failed(self, message: TaskFailed) -> None:
        rec = self._recovery
        task = message.task
        if rec is None:
            return
        key = (task.stage.stage_id, task.partition)
        info = rec.running.pop(key, None)
        if info is None or info.attempt != message.attempt:
            if info is not None:
                rec.running[key] = info
            return
        self._assigned[message.executor_id] -= 1
        failures = rec.failures.get(key, 0) + 1
        rec.failures[key] = failures
        max_attempts = int(self.ctx.conf.get("spark.task.maxFailures"))
        if failures >= max_attempts and self._run is not None:
            self._abort(
                self._run,
                f"recovery task {key[0]}.{key[1]} failed {failures} times; "
                f"last reason: {message.reason}",
            )
            return
        rec.manager.add(Task(
            task.stage, task.partition,
            build_task_plan(self.ctx, task.stage, task.partition),
        ))
        self._assign()

    def _finish_recovery(self, rec: _Recovery) -> None:
        self._recovery = None
        run = self._run
        tracer = self.ctx.tracer
        if rec.trace_span >= 0:
            tracer.end(rec.trace_span)
        if run is None:
            return
        if run.tasks_pending_build:
            run.tasks_pending_build = False
            for split in range(run.stage.num_tasks):
                run.manager.add(Task(
                    run.stage, split,
                    build_task_plan(self.ctx, run.stage, split),
                ))
        else:
            # Queued tasks planned their shuffle fetches before the loss;
            # rebuild them against the recovered map-output locations.
            pending = sorted(run.manager.pending_partitions())
            if pending:
                fresh = TaskSetManager([
                    Task(run.stage, split,
                         build_task_plan(self.ctx, run.stage, split))
                    for split in pending
                ])
                run.manager = fresh
        for partition in run.blocked:
            self._enqueue_retry(run, partition)
        run.blocked = []
        self._maybe_finish_stage(run)

    # -- speculative execution ------------------------------------------------------

    def _check_speculation(self, run: _StageRun) -> None:
        if (not run.spec_enabled or run.aborted or self._recovery is not None
                or self._run is not run):
            return
        num_tasks = run.stage.num_tasks
        done = len(run.completed_partitions)
        if done >= num_tasks or not run.durations:
            return
        if done < max(1, math.ceil(run.spec_quantile * num_tasks)):
            return
        ordered = sorted(run.durations)
        median = ordered[len(ordered) // 2]
        threshold = run.spec_multiplier * median
        now = self.ctx.sim.now
        earliest: Optional[float] = None
        for partition, attempts in run.running.items():
            if partition in run.speculated or len(attempts) != 1:
                continue
            info = next(iter(attempts.values()))
            crossing = info.launch_time + threshold
            if now >= crossing:
                self._launch_speculative(run, partition, info)
            elif earliest is None or crossing < earliest:
                earliest = crossing
        if earliest is not None and (
            run.spec_timer_at is None or earliest < run.spec_timer_at
        ):
            run.spec_timer_at = earliest
            self.ctx.sim.call_at(
                earliest, lambda: self._speculation_timer(run, earliest)
            )

    def _speculation_timer(self, run: _StageRun, when: float) -> None:
        if self._run is not run or run.spec_timer_at != when:
            return
        run.spec_timer_at = None
        self._check_speculation(run)

    def _launch_speculative(self, run: _StageRun, partition: int,
                            info: _Attempt) -> None:
        chosen = None
        for executor in self.ctx.executors:
            if not executor.alive:
                continue
            executor_id = executor.executor_id
            if self._pool_view[executor_id] - self._assigned[executor_id] <= 0:
                continue
            if executor_id != info.executor_id:
                chosen = executor
                break
            if chosen is None:
                chosen = executor
        if chosen is None:
            return  # no free slot anywhere; the next completion re-checks
        run.speculated.add(partition)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant(
                "speculation", "launch",
                stage_id=run.stage.stage_id,
                partition=partition,
                original_executor=info.executor_id,
                duplicate_executor=chosen.executor_id,
                elapsed=self.ctx.sim.now - info.launch_time,
            )
        self.ctx.metrics.counter("speculation.launched").inc()
        self._launch(run, info.task, chosen, speculative=True)

    # -- stage completion / abort -----------------------------------------------------

    def _maybe_finish_stage(self, run: _StageRun) -> bool:
        if run.aborted or self._run is not run:
            return False
        if (len(run.completed_partitions) == run.stage.num_tasks
                and run.retries_pending == 0
                and not run.blocked
                and self._recovery is None):
            self._finish_stage(run)
            return True
        return False

    def _finish_stage(self, run: _StageRun) -> None:
        inv = self.ctx.invariants
        if inv is not None:
            # The quiescent point: no work in flight, no messages pending,
            # so the free-core registry must agree with the executors.
            inv.on_stage_quiescent(self, run)
        run.record.close(self.ctx.sim.now)
        if run.trace_span >= 0:
            self.ctx.tracer.end(run.trace_span,
                                duration=run.record.duration)
        self.ctx.metrics.counter("scheduler.stages_completed").inc()
        if self.ctx.profiling:
            self.ctx.metrics.histogram("stages.runtime").observe(
                run.record.duration
            )
        self.ctx.monitoring.end_stage(run.stage, run.record)
        # Record sizes for RDDs this stage materialised into the cache so
        # later stages plan memory reads instead of recomputation.
        for rdd in run.stage.pipeline_rdds():
            if rdd.cached:
                for split in range(rdd.num_partitions):
                    self.ctx.cache_manager.put_size(
                        rdd.id, split, rdd.partition_size(split)
                    )
        self._run = None
        if run.stage.is_result_stage:
            ordered = [run.results[i] for i in range(run.stage.num_tasks)]
            run.done.succeed(ordered)
        else:
            run.done.succeed(None)

    def _abort(self, run: _StageRun, reason: str) -> None:
        """Fail the job permanently: kill live work and propagate the error."""
        run.aborted = True
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant("fault", "job-aborted",
                           stage_id=run.stage.stage_id, reason=reason)
        self.ctx.metrics.counter("scheduler.jobs_aborted").inc()
        for executor in self.ctx.executors:
            if executor.alive:
                executor.kill_all("job-aborted")
        for executor_id in self._assigned:
            self._assigned[executor_id] = 0
        run.running.clear()
        self._recovery = None
        run.record.close(self.ctx.sim.now)
        if run.trace_span >= 0:
            tracer.end(run.trace_span, error=reason)
        self.ctx.monitoring.end_stage(run.stage, run.record)
        self._run = None
        run.done.fail(JobAbortedError(reason))
