"""``SparkContext`` analogue: the application entry point.

Wires a cluster, DFS, dataset catalog, executors, schedulers, monitoring and
a pool-size policy into one application, and runs jobs to completion on the
simulated timeline.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.cluster import Cluster, ClusterSpec
from repro.engine.actions import Action, SketchAction
from repro.engine.cache import CacheManager
from repro.engine.conf import SparkConf
from repro.engine.dag import DAGScheduler
from repro.engine.datasets import DatasetCatalog
from repro.engine.executor import Executor
from repro.engine.metrics import RunRecorder
from repro.engine.policy import ExecutorPolicy
from repro.engine.rdd import HadoopRDD, ParallelizedRDD, RDD
from repro.engine.scheduler import TaskScheduler
from repro.engine.shuffle import MapOutputTracker
from repro.engine.sizing import SizeInfo, estimate_size
from repro.engine.stage import Stage
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.storage.dfs import DistributedFileSystem

PolicyFactory = Callable[[Executor], ExecutorPolicy]


class SparkContext:
    """One application on one cluster.

    ``policy_factory`` creates the thread-pool policy for each executor --
    the seam through which the paper's three systems (default, static,
    self-adaptive) plug in.
    """

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        conf: Optional[SparkConf] = None,
        policy_factory: Optional[PolicyFactory] = None,
        monitoring_interval: float = 1.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan=None,
        invariants=None,
    ) -> None:
        #: Set before anything else: executors read ``ctx.faults`` on their
        #: hot path, and ``None`` means every fault branch is skipped.
        self.faults = None
        #: Same contract for the invariant monitor: engine hook sites check
        #: ``ctx.invariants is not None`` and otherwise cost nothing.
        self.invariants = None
        self.cluster = cluster if cluster is not None else Cluster(ClusterSpec())
        self.sim = self.cluster.sim
        self.streams = self.cluster.streams
        self.conf = conf if conf is not None else SparkConf()
        self.dfs = DistributedFileSystem(self.cluster.node_ids)
        self.datasets = DatasetCatalog()
        self.map_output_tracker = MapOutputTracker()
        self.cache_manager = CacheManager()
        self.recorder = RunRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if invariants is not None:
            # Before _wire_tracer, so the monitor's sink observes the
            # application-start instant (it carries the cluster geometry).
            invariants.bind(self)
        if self.tracer.enabled:
            self._wire_tracer()
        #: Demand profiling is on only when an enabled tracer carries a
        #: profiler sink.  Every profiling hook (monitoring probe, registry
        #: histograms) gates on this flag, so runs without a profiler --
        #: including the golden-log runs -- emit byte-identical logs.
        self.profiling = self.tracer.enabled and any(
            getattr(sink, "is_profiler", False) for sink in self.tracer.sinks
        )
        # Imported here to avoid a package-level cycle: repro.monitoring
        # reads engine metrics types, and this module wires monitoring in.
        from repro.monitoring import MonitoringService

        self.monitoring = MonitoringService(self, interval=monitoring_interval)
        self.executors: List[Executor] = [
            Executor(self, node, executor_id)
            for executor_id, node in enumerate(self.cluster.nodes)
        ]
        self.scheduler = TaskScheduler(self)
        self.dag = DAGScheduler(self)
        self._next_rdd_id = 0
        #: Divergence barrier (see :mod:`repro.harness.fork`): when set, the
        #: first job whose execution spans ``fork_hook_at`` pauses there and
        #: calls ``fork_hook(self)`` -- the seam through which the fork
        #: engine turns one warm prefix into many copy-on-write children.
        self.fork_hook: Optional[Callable[["SparkContext"], None]] = None
        self.fork_hook_at: float = 0.0
        if policy_factory is not None:
            self.set_policy_factory(policy_factory)
        if fault_plan is not None:
            self.install_fault_plan(fault_plan)

    # -- wiring ------------------------------------------------------------------

    def _wire_tracer(self) -> None:
        """Attach the tracer to every instrumented subsystem."""
        tracer = self.tracer
        tracer.bind_clock(lambda: self.sim.now)
        self.sim.tracer = tracer
        self.map_output_tracker.tracer = tracer
        self.cluster.fabric.tracer = tracer
        for node in self.cluster.nodes:
            node.disk.tracer = tracer
        tracer.instant(
            "app", "application-start",
            num_nodes=self.cluster.num_nodes,
            cores_per_node=self.cluster.nodes[0].cores
            if self.cluster.nodes else 0,
            device=self.cluster.nodes[0].disk.profile.name
            if self.cluster.nodes else "",
        )

    def attach_tracer(self, tracer: Tracer) -> None:
        """Wire a tracer into a context built without one.

        The copy-on-write fork engine builds the shared prefix untraced
        (children must not inherit open sink file handles) and each child
        attaches its own tracer here, at the divergence barrier.  Nothing
        in the engine captures ``ctx.tracer`` by value and the prefix emits
        no events, so a log started here is byte-identical to one wired at
        construction -- the golden-log tests hold the fork engine to that.
        """
        if self.tracer.enabled:
            raise ValueError("context already has an enabled tracer")
        self.tracer = tracer
        self._wire_tracer()
        self.profiling = self.tracer.enabled and any(
            getattr(sink, "is_profiler", False) for sink in self.tracer.sinks
        )

    def install_fault_plan(self, fault_plan) -> None:
        """Arm a fault plan: build the injector and schedule its timers.

        Called at construction for ordinary runs, and at the divergence
        barrier by forked children trying fault ablations against a shared
        fault-free prefix.  Timer scheduling goes through
        :meth:`Simulator.call_at`, so a plan whose faults predate the
        barrier time fails loudly instead of silently firing late.
        """
        if self.faults is not None:
            raise ValueError("context already has a fault plan installed")
        # Imported lazily: repro.faults depends on engine types.
        from repro.faults import FaultInjector

        self.faults = FaultInjector(self, fault_plan)
        self.faults.wire()

    def set_policy_factory(self, factory: PolicyFactory) -> None:
        for executor in self.executors:
            executor.policy = factory(executor)

    def new_rdd_id(self) -> int:
        rdd_id = self._next_rdd_id
        self._next_rdd_id += 1
        return rdd_id

    @property
    def default_parallelism(self) -> int:
        configured = self.conf.get("spark.default.parallelism")
        if configured:
            return int(configured)
        return self.cluster.total_cores

    # -- dataset creation ---------------------------------------------------------

    def write_text_file(self, path: str, lines: Sequence[Any]) -> None:
        """Store real records as a DFS file (materialised dataset)."""
        lines = list(lines)
        size = SizeInfo(records=float(len(lines)), bytes=estimate_size(lines))
        self.datasets.register_input(path, size, records=lines)
        self.dfs.create(path, size.bytes)

    def register_synthetic_file(self, path: str, size_bytes: float,
                                num_records: float) -> None:
        """Declare a benchmark-scale input that is never materialised."""
        if size_bytes < 0 or num_records < 0:
            raise ValueError("synthetic file sizes must be non-negative")
        self.datasets.register_input(
            path, SizeInfo(records=num_records, bytes=size_bytes)
        )
        self.dfs.create(path, size_bytes)

    # -- RDD creation -----------------------------------------------------------------

    def text_file(self, path: str, num_partitions: Optional[int] = None,
                  **annotations: float) -> HadoopRDD:
        return HadoopRDD(self, path, num_partitions, **annotations)

    textFile = text_file

    def parallelize(self, data: Sequence[Any],
                    num_partitions: Optional[int] = None) -> ParallelizedRDD:
        if num_partitions is None:
            num_partitions = min(len(data), self.default_parallelism) or 1
        return ParallelizedRDD(self, data, num_partitions)

    # -- job execution -------------------------------------------------------------------

    def run_job(self, rdd: RDD, action: Action) -> Any:
        """Run all jobs needed for ``action`` (sampling pre-jobs included)."""
        for dep in self.dag.unbounded_range_partitioners(rdd):
            sample = self._execute_job(dep.rdd, SketchAction())
            dep.partitioner.set_bounds(sample if sample is not None else [])
        return self._execute_job(rdd, action)

    def _execute_job(self, rdd: RDD, action: Action) -> Any:
        stages = self.dag.build_stages(rdd, action)

        def job():
            results = None
            for stage in stages:
                results = yield self.scheduler.run_stage(stage)
            return results

        handle = self.sim.process(job(), name=f"job-{rdd.name}")
        if self.fork_hook is not None:
            # Fire the divergence barrier inside the job that spans its
            # time point; a job that finishes first leaves the hook armed
            # for the next one (fork_barrier stops without advancing the
            # clock, so pending fault timers are untouched).
            if (self.fork_hook_at <= self.sim.now
                    or self.sim.fork_barrier(self.fork_hook_at, stop=handle)):
                hook, self.fork_hook = self.fork_hook, None
                hook(self)
        if self.faults is None:
            self.sim.run()
        else:
            # Stop at job completion instead of draining the queue: pending
            # fault timers must fire *during* later jobs, not idle-fire now.
            self.sim.run_until(handle)
        if not handle.triggered:
            raise RuntimeError(
                f"job on {rdd.name} deadlocked: the event queue drained with "
                f"{len(stages)} stages planned but the job incomplete"
            )
        if not handle.ok:
            raise handle.value
        return action.finalize(handle.value, rdd)

    # -- reporting ------------------------------------------------------------------------

    @property
    def total_runtime(self) -> float:
        return self.recorder.total_runtime

    def executed_stages(self) -> List[Stage]:
        # The recorder holds records; callers usually want those instead.
        raise NotImplementedError("use ctx.recorder.stages")
