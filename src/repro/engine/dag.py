"""The DAG scheduler: cutting RDD lineage into stages.

Exactly as in Spark: walking back from the action's RDD, every
:class:`ShuffleDependency` starts a new (shuffle-map) stage; narrow
dependencies stay inside the current stage.  Map stages are memoised by
shuffle id so iterative programs (PageRank) reuse the same stage object and
already-computed shuffles are skipped on later jobs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.actions import Action
from repro.engine.rdd import NarrowDependency, RDD, ShuffleDependency
from repro.engine.partitioner import RangePartitioner
from repro.engine.stage import Stage


class DAGScheduler:
    """Builds the ordered stage list for a job."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self._next_stage_id = 0
        self._shuffle_stages: Dict[int, Stage] = {}

    def _new_stage_id(self) -> int:
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        return stage_id

    # -- stage graph construction ------------------------------------------------

    def build_stages(self, rdd: RDD, action: Action) -> List[Stage]:
        """All stages required to run ``action`` on ``rdd``, in execution order.

        Map stages whose shuffle output is already complete are omitted
        (Spark's "skipped stages").
        """
        parents = self._parent_stages(rdd)
        result_stage = Stage(
            self._new_stage_id(), rdd, parents=parents, action=action
        )
        ordered: List[Stage] = []
        seen: set = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen:
                return
            seen.add(stage.stage_id)
            for parent in stage.parents:
                visit(parent)
            ordered.append(stage)

        visit(result_stage)
        tracker = self.ctx.map_output_tracker
        return [
            stage
            for stage in ordered
            if stage.is_result_stage
            or not tracker.is_complete(stage.shuffle_dep.shuffle_id)
        ]

    def _parent_stages(self, rdd: RDD) -> List[Stage]:
        """Map stages for every shuffle dependency reachable narrowly."""
        stages: List[Stage] = []
        visited: set = set()

        def visit(current: RDD) -> None:
            if current.id in visited:
                return
            visited.add(current.id)
            if current.cached and self.ctx.cache_manager.has_any(current.id):
                return  # served from cache; upstream lineage is not needed
            for dep in current.deps:
                if isinstance(dep, ShuffleDependency):
                    stage = self._stage_for_shuffle(dep)
                    if all(s is not stage for s in stages):
                        stages.append(stage)
                elif isinstance(dep, NarrowDependency):
                    visit(dep.rdd)

        visit(rdd)
        return stages

    def _stage_for_shuffle(self, dep: ShuffleDependency) -> Stage:
        if dep.shuffle_id not in self._shuffle_stages:
            parents = self._parent_stages(dep.rdd)
            self._shuffle_stages[dep.shuffle_id] = Stage(
                self._new_stage_id(), dep.rdd, parents=parents, shuffle_dep=dep
            )
        return self._shuffle_stages[dep.shuffle_id]

    # -- range-partitioner sampling --------------------------------------------------

    def unbounded_range_partitioners(self, rdd: RDD) -> List[ShuffleDependency]:
        """Shuffle deps whose RangePartitioner still needs its sampling job.

        Spark computes range bounds with a separate job over the parent RDD
        before the shuffle runs -- Terasort's stage 0 in the paper.
        """
        found: List[ShuffleDependency] = []
        visited: set = set()

        def visit(current: RDD) -> None:
            if current.id in visited:
                return
            visited.add(current.id)
            if current.cached and self.ctx.cache_manager.has_any(current.id):
                return
            for dep in current.deps:
                if isinstance(dep, ShuffleDependency):
                    partitioner = dep.partitioner
                    if isinstance(partitioner, RangePartitioner):
                        if not partitioner.has_bounds and not (
                            self.ctx.map_output_tracker.is_complete(dep.shuffle_id)
                        ):
                            found.append(dep)
                visit(dep.rdd)

        visit(rdd)
        return found
