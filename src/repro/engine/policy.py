"""Executor thread-pool policies: the pluggable tuning surface.

The paper's three compared systems are all instances of one interface:

* ``DefaultPolicy`` -- stock Spark: pool size = all virtual cores, always.
* ``StaticIOPolicy`` (:mod:`repro.adaptive.static_policy`) -- the static
  solution: a user-chosen size for I/O-marked stages.
* ``AdaptivePolicy`` (:mod:`repro.adaptive.policies`) -- the self-adaptive
  executor: a MAPE-K loop re-deciding the size while the stage runs.

A policy instance is attached to *one* executor (decisions are per executor
per stage -- paper section 5, Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.metrics import TaskMetrics


class ExecutorPolicy:
    """Decides an executor's thread-pool size over time."""

    def on_stage_start(self, executor, stage) -> int:
        """Initial pool size for this stage on this executor."""
        return executor.default_pool_size

    def on_task_complete(self, executor, stage, metrics: TaskMetrics) -> Optional[int]:
        """Optionally return a new pool size after a task completes."""
        return None

    def on_fault(self, executor, reason: str) -> None:
        """A fault (kill, crash) touched this executor; react if needed.

        The base policies ignore faults; the adaptive policy discards its
        contaminated monitoring interval (see ``AdaptivePolicy.on_fault``).
        """


class DefaultPolicy(ExecutorPolicy):
    """Stock Spark behaviour: one thread per virtual core, never adjusted."""


class FixedPolicy(ExecutorPolicy):
    """A fixed pool size for every stage (used by sweep experiments)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size

    def on_stage_start(self, executor, stage) -> int:
        return self.size
