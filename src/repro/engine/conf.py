"""Configuration system with the full Spark 2.4 functional-parameter registry.

The paper's Table 1 counts 117 functional parameters across seven categories
(Shuffle 19, Compression & Serialization 16, Memory Management 14, Execution
Behavior 14, Network 13, Scheduling 32, Dynamic Allocation 9) to motivate how
unwieldy manual tuning is.  We register all of them with their Spark defaults
so the table can be regenerated (``benchmarks/test_table1_parameters.py``);
the engine wires the subset it needs and treats the rest as validated but
inert configuration surface.

The paper's own knobs live under the ``repro.adaptive.*`` namespace and are
registered separately so they do not perturb the Table 1 counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

CATEGORY_SHUFFLE = "Shuffle"
CATEGORY_COMPRESSION = "Compression and Serialization"
CATEGORY_MEMORY = "Memory Management"
CATEGORY_EXECUTION = "Execution Behavior"
CATEGORY_NETWORK = "Network"
CATEGORY_SCHEDULING = "Scheduling"
CATEGORY_DYNALLOC = "Dynamic Allocation"
CATEGORY_ADAPTIVE = "Self-adaptive Executors"
#: Fault-injection knobs (FAULTS.md); deliberately outside
#: FUNCTIONAL_CATEGORIES so the paper's Table 1 census stays at 117.
CATEGORY_FAULTS = "Fault Injection"

FUNCTIONAL_CATEGORIES = (
    CATEGORY_SHUFFLE,
    CATEGORY_COMPRESSION,
    CATEGORY_MEMORY,
    CATEGORY_EXECUTION,
    CATEGORY_NETWORK,
    CATEGORY_SCHEDULING,
    CATEGORY_DYNALLOC,
)


@dataclass(frozen=True)
class Parameter:
    """One registered configuration parameter."""

    key: str
    category: str
    default: Any
    description: str = ""

    @property
    def is_functional(self) -> bool:
        return self.category in FUNCTIONAL_CATEGORIES


def _spark_parameters() -> List[Parameter]:
    """The 117 functional parameters of Spark 2.4.2 (paper Table 1)."""
    p = Parameter
    shuffle = [
        p("spark.shuffle.compress", CATEGORY_SHUFFLE, True,
          "Compress map output files"),
        p("spark.shuffle.spill.compress", CATEGORY_SHUFFLE, True,
          "Compress data spilled during shuffles"),
        p("spark.shuffle.file.buffer", CATEGORY_SHUFFLE, "32k",
          "In-memory buffer per shuffle file output stream"),
        p("spark.reducer.maxSizeInFlight", CATEGORY_SHUFFLE, "48m",
          "Max map output fetched simultaneously per reduce task"),
        p("spark.reducer.maxReqsInFlight", CATEGORY_SHUFFLE, 2147483647,
          "Max remote fetch requests in flight"),
        p("spark.reducer.maxBlocksInFlightPerAddress", CATEGORY_SHUFFLE, 2147483647,
          "Max blocks fetched per host and port"),
        p("spark.shuffle.sort.bypassMergeThreshold", CATEGORY_SHUFFLE, 200,
          "Partitions below which sort shuffle avoids merge-sorting"),
        p("spark.shuffle.io.maxRetries", CATEGORY_SHUFFLE, 3,
          "Fetch retries on IO exceptions"),
        p("spark.shuffle.io.retryWait", CATEGORY_SHUFFLE, "5s",
          "Wait between fetch retries"),
        p("spark.shuffle.io.numConnectionsPerPeer", CATEGORY_SHUFFLE, 1,
          "Connections reused across hosts"),
        p("spark.shuffle.io.preferDirectBufs", CATEGORY_SHUFFLE, True,
          "Prefer off-heap buffers in the shuffle transport"),
        p("spark.shuffle.service.enabled", CATEGORY_SHUFFLE, False,
          "External shuffle service"),
        p("spark.shuffle.service.port", CATEGORY_SHUFFLE, 7337,
          "External shuffle service port"),
        p("spark.shuffle.service.index.cache.size", CATEGORY_SHUFFLE, "100m",
          "Shuffle index cache size"),
        p("spark.shuffle.maxChunksBeingTransferred", CATEGORY_SHUFFLE, 9223372036854775807,
          "Max chunks transferred per shuffle fetch"),
        p("spark.shuffle.memoryFraction", CATEGORY_SHUFFLE, 0.2,
          "(legacy) fraction of heap for shuffle aggregation"),
        p("spark.shuffle.accurateBlockThreshold", CATEGORY_SHUFFLE, 104857600,
          "Accurately record block sizes above this threshold"),
        p("spark.shuffle.registration.timeout", CATEGORY_SHUFFLE, 5000,
          "Registration timeout with external shuffle service (ms)"),
        p("spark.shuffle.registration.maxAttempts", CATEGORY_SHUFFLE, 3,
          "Registration retries with external shuffle service"),
    ]
    compression = [
        p("spark.broadcast.compress", CATEGORY_COMPRESSION, True,
          "Compress broadcast variables"),
        p("spark.checkpoint.compress", CATEGORY_COMPRESSION, False,
          "Compress RDD checkpoints"),
        p("spark.io.compression.codec", CATEGORY_COMPRESSION, "lz4",
          "Codec for internal data"),
        p("spark.io.compression.lz4.blockSize", CATEGORY_COMPRESSION, "32k",
          "LZ4 block size"),
        p("spark.io.compression.snappy.blockSize", CATEGORY_COMPRESSION, "32k",
          "Snappy block size"),
        p("spark.io.compression.zstd.level", CATEGORY_COMPRESSION, 1,
          "Zstd compression level"),
        p("spark.io.compression.zstd.bufferSize", CATEGORY_COMPRESSION, "32k",
          "Zstd buffer size"),
        p("spark.kryo.classesToRegister", CATEGORY_COMPRESSION, "",
          "Classes registered with Kryo"),
        p("spark.kryo.referenceTracking", CATEGORY_COMPRESSION, True,
          "Track references to the same object"),
        p("spark.kryo.registrationRequired", CATEGORY_COMPRESSION, False,
          "Require Kryo registration"),
        p("spark.kryo.registrator", CATEGORY_COMPRESSION, "",
          "Custom Kryo registrators"),
        p("spark.kryo.unsafe", CATEGORY_COMPRESSION, False,
          "Use unsafe-based Kryo serializer"),
        p("spark.kryoserializer.buffer.max", CATEGORY_COMPRESSION, "64m",
          "Max Kryo buffer"),
        p("spark.kryoserializer.buffer", CATEGORY_COMPRESSION, "64k",
          "Initial Kryo buffer"),
        p("spark.rdd.compress", CATEGORY_COMPRESSION, False,
          "Compress serialized RDD partitions"),
        p("spark.serializer", CATEGORY_COMPRESSION,
          "org.apache.spark.serializer.JavaSerializer", "Serializer class"),
    ]
    memory = [
        p("spark.memory.fraction", CATEGORY_MEMORY, 0.6,
          "Heap fraction for execution and storage"),
        p("spark.memory.storageFraction", CATEGORY_MEMORY, 0.5,
          "Storage share immune to eviction"),
        p("spark.memory.offHeap.enabled", CATEGORY_MEMORY, False,
          "Use off-heap memory"),
        p("spark.memory.offHeap.size", CATEGORY_MEMORY, 0,
          "Off-heap memory bytes"),
        p("spark.memory.useLegacyMode", CATEGORY_MEMORY, False,
          "Legacy memory management"),
        p("spark.storage.memoryFraction", CATEGORY_MEMORY, 0.6,
          "(legacy) heap fraction for the cache"),
        p("spark.storage.unrollFraction", CATEGORY_MEMORY, 0.2,
          "(legacy) fraction for unrolling blocks"),
        p("spark.storage.replication.proactive", CATEGORY_MEMORY, False,
          "Proactively replenish lost cached replicas"),
        p("spark.cleaner.periodicGC.interval", CATEGORY_MEMORY, "30min",
          "Periodic driver GC trigger"),
        p("spark.cleaner.referenceTracking", CATEGORY_MEMORY, True,
          "Context cleaning"),
        p("spark.cleaner.referenceTracking.blocking", CATEGORY_MEMORY, True,
          "Block on cleanup tasks"),
        p("spark.cleaner.referenceTracking.blocking.shuffle", CATEGORY_MEMORY, False,
          "Block on shuffle cleanup tasks"),
        p("spark.cleaner.referenceTracking.cleanCheckpoints", CATEGORY_MEMORY, False,
          "Clean checkpoint files on GC"),
        p("spark.broadcast.blockSize", CATEGORY_MEMORY, "4m",
          "TorrentBroadcast block size"),
    ]
    execution = [
        p("spark.broadcast.checksum", CATEGORY_EXECUTION, True,
          "Checksum broadcast blocks"),
        p("spark.executor.cores", CATEGORY_EXECUTION, None,
          "Worker threads per executor; default = all virtual cores"),
        p("spark.default.parallelism", CATEGORY_EXECUTION, None,
          "Default partition count for shuffles"),
        p("spark.executor.heartbeatInterval", CATEGORY_EXECUTION, "10s",
          "Executor heartbeat period"),
        p("spark.files.fetchTimeout", CATEGORY_EXECUTION, "60s",
          "Timeout fetching files from the driver"),
        p("spark.files.useFetchCache", CATEGORY_EXECUTION, True,
          "Share file fetches between executors on a host"),
        p("spark.files.overwrite", CATEGORY_EXECUTION, False,
          "Overwrite fetched files"),
        p("spark.files.maxPartitionBytes", CATEGORY_EXECUTION, 134217728,
          "Max bytes per partition when reading files"),
        p("spark.files.openCostInBytes", CATEGORY_EXECUTION, 4194304,
          "Estimated cost to open a file"),
        p("spark.hadoop.cloneConf", CATEGORY_EXECUTION, False,
          "Clone Hadoop conf per task"),
        p("spark.hadoop.validateOutputSpecs", CATEGORY_EXECUTION, True,
          "Validate output specs on save"),
        p("spark.storage.memoryMapThreshold", CATEGORY_EXECUTION, "2m",
          "Min block size for memory mapping"),
        p("spark.hadoop.mapreduce.fileoutputcommitter.algorithm.version",
          CATEGORY_EXECUTION, 1, "File output committer algorithm"),
        p("spark.executor.memory", CATEGORY_EXECUTION, "1g",
          "Executor heap size"),
    ]
    network = [
        p("spark.rpc.message.maxSize", CATEGORY_NETWORK, 128,
          "Max RPC message size (MiB)"),
        p("spark.blockManager.port", CATEGORY_NETWORK, "random",
          "Block manager listen port"),
        p("spark.driver.blockManager.port", CATEGORY_NETWORK, "random",
          "Driver block manager port"),
        p("spark.driver.bindAddress", CATEGORY_NETWORK, "",
          "Driver bind address"),
        p("spark.driver.host", CATEGORY_NETWORK, "localhost",
          "Driver hostname"),
        p("spark.driver.port", CATEGORY_NETWORK, "random",
          "Driver listen port"),
        p("spark.network.timeout", CATEGORY_NETWORK, "120s",
          "Default network interaction timeout"),
        p("spark.port.maxRetries", CATEGORY_NETWORK, 16,
          "Port binding retries"),
        p("spark.rpc.numRetries", CATEGORY_NETWORK, 3,
          "RPC task retries"),
        p("spark.rpc.retry.wait", CATEGORY_NETWORK, "3s",
          "Wait between RPC retries"),
        p("spark.rpc.askTimeout", CATEGORY_NETWORK, "120s",
          "RPC ask timeout"),
        p("spark.rpc.lookupTimeout", CATEGORY_NETWORK, "120s",
          "RPC remote lookup timeout"),
        p("spark.core.connection.ack.wait.timeout", CATEGORY_NETWORK, "60s",
          "Ack timeout before giving up"),
    ]
    scheduling = [
        p("spark.cores.max", CATEGORY_SCHEDULING, None,
          "Max total cores for the application"),
        p("spark.locality.wait", CATEGORY_SCHEDULING, "3s",
          "Locality level downgrade wait"),
        p("spark.locality.wait.node", CATEGORY_SCHEDULING, "3s",
          "Node locality wait"),
        p("spark.locality.wait.process", CATEGORY_SCHEDULING, "3s",
          "Process locality wait"),
        p("spark.locality.wait.rack", CATEGORY_SCHEDULING, "3s",
          "Rack locality wait"),
        p("spark.scheduler.maxRegisteredResourcesWaitingTime", CATEGORY_SCHEDULING,
          "30s", "Max wait for resource registration"),
        p("spark.scheduler.minRegisteredResourcesRatio", CATEGORY_SCHEDULING, 0.8,
          "Min registered resource ratio before scheduling"),
        p("spark.scheduler.mode", CATEGORY_SCHEDULING, "FIFO",
          "Job scheduling mode"),
        p("spark.scheduler.revive.interval", CATEGORY_SCHEDULING, "1s",
          "Worker resource revival period"),
        p("spark.scheduler.listenerbus.eventqueue.capacity", CATEGORY_SCHEDULING,
          10000, "Listener bus event queue size"),
        p("spark.blacklist.enabled", CATEGORY_SCHEDULING, False,
          "Executor blacklisting"),
        p("spark.blacklist.timeout", CATEGORY_SCHEDULING, "1h",
          "Blacklist expiry"),
        p("spark.blacklist.task.maxTaskAttemptsPerExecutor", CATEGORY_SCHEDULING, 1,
          "Task retries per executor before blacklisting"),
        p("spark.blacklist.task.maxTaskAttemptsPerNode", CATEGORY_SCHEDULING, 2,
          "Task retries per node before blacklisting"),
        p("spark.blacklist.stage.maxFailedTasksPerExecutor", CATEGORY_SCHEDULING, 2,
          "Failed tasks per executor before stage blacklisting"),
        p("spark.blacklist.stage.maxFailedExecutorsPerNode", CATEGORY_SCHEDULING, 2,
          "Blacklisted executors per node before stage node blacklisting"),
        p("spark.blacklist.application.maxFailedTasksPerExecutor",
          CATEGORY_SCHEDULING, 2, "App-wide failed-task threshold"),
        p("spark.blacklist.application.maxFailedExecutorsPerNode",
          CATEGORY_SCHEDULING, 2, "App-wide failed-executor threshold"),
        p("spark.blacklist.killBlacklistedExecutors", CATEGORY_SCHEDULING, False,
          "Kill blacklisted executors"),
        p("spark.blacklist.application.fetchFailure.enabled", CATEGORY_SCHEDULING,
          False, "Blacklist on fetch failure"),
        p("spark.speculation", CATEGORY_SCHEDULING, False,
          "Speculative execution"),
        p("spark.speculation.interval", CATEGORY_SCHEDULING, "100ms",
          "Speculation check period"),
        p("spark.speculation.multiplier", CATEGORY_SCHEDULING, 1.5,
          "Slowness multiple for speculation"),
        p("spark.speculation.quantile", CATEGORY_SCHEDULING, 0.75,
          "Completion quantile before speculation"),
        p("spark.task.cpus", CATEGORY_SCHEDULING, 1,
          "Cores per task"),
        p("spark.task.maxFailures", CATEGORY_SCHEDULING, 4,
          "Task failures before job failure"),
        p("spark.task.reaper.enabled", CATEGORY_SCHEDULING, False,
          "Monitor killed tasks"),
        p("spark.task.reaper.pollingInterval", CATEGORY_SCHEDULING, "10s",
          "Killed-task polling period"),
        p("spark.task.reaper.threadDump", CATEGORY_SCHEDULING, True,
          "Thread dumps during task reaping"),
        p("spark.task.reaper.killTimeout", CATEGORY_SCHEDULING, -1,
          "JVM kill deadline for unreaped tasks"),
        p("spark.stage.maxConsecutiveAttempts", CATEGORY_SCHEDULING, 4,
          "Stage attempts before abort"),
        p("spark.job.interruptOnCancel", CATEGORY_SCHEDULING, False,
          "Interrupt task threads on job cancel"),
    ]
    dynalloc = [
        p("spark.dynamicAllocation.enabled", CATEGORY_DYNALLOC, False,
          "Scale executor count with load"),
        p("spark.dynamicAllocation.executorIdleTimeout", CATEGORY_DYNALLOC, "60s",
          "Idle executor removal timeout"),
        p("spark.dynamicAllocation.cachedExecutorIdleTimeout", CATEGORY_DYNALLOC,
          "infinity", "Idle timeout for executors with cached blocks"),
        p("spark.dynamicAllocation.initialExecutors", CATEGORY_DYNALLOC, None,
          "Initial executor count"),
        p("spark.dynamicAllocation.maxExecutors", CATEGORY_DYNALLOC, "infinity",
          "Upper executor bound"),
        p("spark.dynamicAllocation.minExecutors", CATEGORY_DYNALLOC, 0,
          "Lower executor bound"),
        p("spark.dynamicAllocation.executorAllocationRatio", CATEGORY_DYNALLOC, 1.0,
          "Executors per pending task ratio"),
        p("spark.dynamicAllocation.schedulerBacklogTimeout", CATEGORY_DYNALLOC, "1s",
          "Backlog duration before requesting executors"),
        p("spark.dynamicAllocation.sustainedSchedulerBacklogTimeout",
          CATEGORY_DYNALLOC, "1s", "Backlog duration for subsequent requests"),
    ]
    return shuffle + compression + memory + execution + network + scheduling + dynalloc


def _adaptive_parameters() -> List[Parameter]:
    """This project's own knobs (paper section 5 + simulator controls)."""
    p = Parameter
    return [
        p("repro.adaptive.cmin", CATEGORY_ADAPTIVE, 2,
          "Hill-climbing start: minimum thread-pool size (paper: 2, since a "
          "single thread almost never wins)"),
        p("repro.adaptive.cmax", CATEGORY_ADAPTIVE, None,
          "Hill-climbing ceiling; default = virtual core count"),
        p("repro.adaptive.tolerance", CATEGORY_ADAPTIVE, 2.0,
          "Hysteresis on the congestion index: keep climbing while "
          "zeta_j <= tolerance * zeta_(j/2)"),
        p("repro.static.io.threads", CATEGORY_ADAPTIVE, 8,
          "Static solution: thread count for I/O-marked stages"),
        p("repro.task.chunk.bytes", CATEGORY_ADAPTIVE, 8 * 1024 * 1024,
          "I/O request granularity for task phase interleaving"),
        p("repro.task.max.chunks", CATEGORY_ADAPTIVE, 64,
          "Upper bound on chunks per task"),
        p("repro.shuffle.read.disk.fraction", CATEGORY_ADAPTIVE, 0.8,
          "Fraction of shuffle fetches served from source disk rather than "
          "the OS page cache"),
        p("repro.output.replication", CATEGORY_ADAPTIVE, 1,
          "Replication factor for job output files"),
        p("repro.control.latency", CATEGORY_ADAPTIVE, 0.002,
          "Driver <-> executor message latency (seconds)"),
        p("repro.cpu.shuffle.write.per.byte", CATEGORY_ADAPTIVE, 6.0e-8,
          "CPU seconds per shuffle byte serialised + compressed on write"),
        p("repro.cpu.shuffle.read.per.byte", CATEGORY_ADAPTIVE, 2.5e-8,
          "CPU seconds per shuffle byte decompressed + deserialised on fetch"),
        p("repro.cpu.output.write.per.byte", CATEGORY_ADAPTIVE, 3.0e-8,
          "CPU seconds per output byte formatted for the DFS"),
    ]


def _fault_parameters() -> List[Parameter]:
    """Recovery knobs for the fault-injection subsystem (FAULTS.md)."""
    p = Parameter
    return [
        p("repro.faults.retry.backoff", CATEGORY_FAULTS, 1.0,
          "Base delay (simulated seconds) before relaunching a crashed task; "
          "doubles per failure of the same partition"),
        p("repro.faults.retry.backoff.max", CATEGORY_FAULTS, 60.0,
          "Upper bound on the exponential retry backoff"),
    ]


class SparkConf:
    """Typed configuration with a parameter registry.

    Mirrors Spark's ``SparkConf``: ``set``/``get`` key-value pairs, but every
    key must be registered, which both documents the surface (Table 1) and
    catches typos -- the paper's point being that 117 knobs are too many to
    tune by hand.
    """

    _REGISTRY: Dict[str, Parameter] = {
        param.key: param
        for param in (
            _spark_parameters() + _adaptive_parameters() + _fault_parameters()
        )
    }

    def __init__(self, overrides: Optional[Dict[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = {}
        if overrides:
            for key, value in overrides.items():
                self.set(key, value)

    # -- registry introspection ---------------------------------------------

    @classmethod
    def registry(cls) -> List[Parameter]:
        return list(cls._REGISTRY.values())

    @classmethod
    def functional_parameters(cls) -> List[Parameter]:
        """The parameters counted in the paper's Table 1."""
        return [param for param in cls._REGISTRY.values() if param.is_functional]

    @classmethod
    def parameters_in_category(cls, category: str) -> List[Parameter]:
        return [p for p in cls._REGISTRY.values() if p.category == category]

    @classmethod
    def category_counts(cls) -> Dict[str, int]:
        """Category -> parameter count; regenerates Table 1."""
        counts = {category: 0 for category in FUNCTIONAL_CATEGORIES}
        for param in cls.functional_parameters():
            counts[param.category] += 1
        return counts

    @classmethod
    def describe(cls, key: str) -> Parameter:
        try:
            return cls._REGISTRY[key]
        except KeyError:
            raise KeyError(f"unknown configuration parameter: {key!r}") from None

    # -- values ---------------------------------------------------------------

    def set(self, key: str, value: Any) -> "SparkConf":
        if key not in self._REGISTRY:
            raise KeyError(
                f"unknown configuration parameter: {key!r}; "
                "see SparkConf.registry() for the known surface"
            )
        self._values[key] = value
        return self

    def get(self, key: str, default: Any = None) -> Any:
        param = self.describe(key)
        if key in self._values:
            return self._values[key]
        if default is not None:
            return default
        return param.default

    def is_set(self, key: str) -> bool:
        return key in self._values

    def explicit_items(self) -> Iterable[tuple]:
        return tuple(sorted(self._values.items()))

    def copy(self) -> "SparkConf":
        clone = SparkConf()
        clone._values = dict(self._values)
        return clone
