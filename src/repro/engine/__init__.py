"""A Spark-like data processing engine running on the simulated cluster.

This package rebuilds the slice of Apache Spark that the paper's contribution
touches:

* :mod:`repro.engine.conf` -- the configuration system with the 117
  functional parameters of Spark 2.4 (paper Table 1) plus this project's own
  ``repro.*`` tuning knobs.
* :mod:`repro.engine.rdd` -- RDDs with lineage, narrow and shuffle
  dependencies, and the I/O markers (``textFile``/``saveAsTextFile``) the
  static solution keys on.
* :mod:`repro.engine.dag` -- the DAG scheduler that cuts the lineage into
  stages at shuffle boundaries.
* :mod:`repro.engine.scheduler` -- the task scheduler with the per-executor
  free-core registry and the message protocol extension that lets executors
  announce pool resizes (paper section 5.4).
* :mod:`repro.engine.executor` -- executors with *resizable* thread pools,
  the managed element of the MAPE-K loop.
* :mod:`repro.engine.shuffle` -- map-output tracking and shuffle data
  placement (shuffle writes spill to local disk; fetches hit source disks and
  the network).
* :mod:`repro.engine.context` -- ``SparkContext`` equivalent tying the
  pieces together.
"""

from repro.engine.conf import SparkConf
from repro.engine.context import SparkContext

__all__ = ["SparkConf", "SparkContext"]
