"""Partitioners: how shuffle outputs are routed to reduce partitions."""

from __future__ import annotations

import bisect
from typing import Any, List, Optional


class Partitioner:
    """Maps a record key to a reduce-partition index."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive: {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``hash(key) mod partitions``."""

    def partition(self, key: Any) -> int:
        return hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Routes keys into sorted, roughly equal-sized ranges.

    Spark builds the range bounds by running a *sampling job* over the parent
    RDD before the shuffle -- that job is Terasort's stage 0 in the paper.
    Until :meth:`set_bounds` is called the partitioner is *unbounded* and the
    DAG scheduler knows it must schedule the sampling pass first.
    """

    def __init__(self, num_partitions: int) -> None:
        super().__init__(num_partitions)
        self._bounds: Optional[List[Any]] = None

    @property
    def has_bounds(self) -> bool:
        return self._bounds is not None

    def set_bounds(self, sample_keys: List[Any]) -> None:
        """Derive range bounds from collected sample keys."""
        cuts = self.num_partitions - 1
        if cuts <= 0 or not sample_keys:
            self._bounds = []
            return
        ordered = sorted(sample_keys)
        bounds = []
        for i in range(1, self.num_partitions):
            index = min(len(ordered) - 1, i * len(ordered) // self.num_partitions)
            bounds.append(ordered[index])
        self._bounds = bounds

    def partition(self, key: Any) -> int:
        if self._bounds is None:
            raise RuntimeError(
                "RangePartitioner used before its sampling job ran "
                "(set_bounds was never called)"
            )
        return bisect.bisect_right(self._bounds, key)

    def __eq__(self, other: object) -> bool:
        # Two range partitioners are interchangeable only if they are the
        # same object: bounds are data-dependent.
        return self is other

    def __hash__(self) -> int:
        return id(self)
