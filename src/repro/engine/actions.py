"""Actions: job-triggering operations on RDDs.

An action defines (a) what each result task does with its partition and (b)
how per-task results fold into the job result.  ``SaveAction`` additionally
declares job output: result tasks write to the DFS, which marks the final
stage I/O-bound for the static solution (paper section 4).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.engine.sizing import SizeInfo


class Action:
    """Base class for actions."""

    #: static-solution marker: does the result stage write job output?
    writes_output = False

    def process_partition(self, records: Optional[List[Any]], split: int) -> Any:
        """Per-task work; ``records`` is None for synthetic datasets."""
        raise NotImplementedError

    def finalize(self, results: List[Any], rdd) -> Any:
        """Fold per-task results into the job result."""
        raise NotImplementedError

    def output_bytes(self, rdd, split: int) -> float:
        """Bytes the result task writes to the DFS (0 unless saving)."""
        return 0.0


class CollectAction(Action):
    """Gather all records at the driver."""

    def process_partition(self, records, split):
        return records if records is not None else []

    def finalize(self, results, rdd):
        collected: List[Any] = []
        for chunk in results:
            collected.extend(chunk)
        return collected


class CountAction(Action):
    """Count records; synthetic partitions count analytically."""

    def process_partition(self, records, split):
        return len(records) if records is not None else None

    def finalize(self, results, rdd):
        if all(r is not None for r in results):
            return sum(results)
        return rdd.total_size().records


class ReduceAction(Action):
    """Fold records with a binary function (materialised data only)."""

    def __init__(self, f: Callable[[Any, Any], Any]) -> None:
        self.f = f

    def process_partition(self, records, split):
        if records is None:
            raise RuntimeError("reduce() requires a materialised dataset")
        if not records:
            return _EMPTY
        out = records[0]
        for item in records[1:]:
            out = self.f(out, item)
        return out

    def finalize(self, results, rdd):
        values = [r for r in results if r is not _EMPTY]
        if not values:
            raise ValueError("reduce() on an empty RDD")
        out = values[0]
        for item in values[1:]:
            out = self.f(out, item)
        return out


class ForeachAction(Action):
    """Apply a side-effecting function to every record."""

    def __init__(self, f: Callable[[Any], None]) -> None:
        self.f = f

    def process_partition(self, records, split):
        if records is not None:
            for item in records:
                self.f(item)
        return None

    def finalize(self, results, rdd):
        return None


class SaveAction(Action):
    """``saveAsTextFile`` / ``saveAsHadoopFile``: write the RDD to the DFS."""

    writes_output = True

    def __init__(self, path: str, bytes_factor: float = 1.0) -> None:
        if bytes_factor < 0:
            raise ValueError("bytes_factor must be non-negative")
        self.path = path
        self.bytes_factor = bytes_factor

    def output_bytes(self, rdd, split: int) -> float:
        return rdd.partition_size(split).bytes * self.bytes_factor

    def process_partition(self, records, split):
        size = None
        if records is not None:
            from repro.engine.sizing import estimate_partition

            size = estimate_partition(records)
        return (split, records, size)

    def finalize(self, results, rdd):
        total_bytes = 0.0
        parts = {}
        materialized = True
        for split, records, size in results:
            if records is None:
                materialized = False
                total_bytes += rdd.partition_size(split).bytes * self.bytes_factor
            else:
                parts[split] = records
                total_bytes += size.bytes * self.bytes_factor
        records_out = None
        if materialized:
            records_out = [
                record for split in sorted(parts) for record in parts[split]
            ]
        rdd.ctx.datasets.register_output(
            self.path,
            SizeInfo(rdd.total_size().records, total_bytes),
            records=records_out,
        )
        rdd.ctx.dfs.create(self.path, total_bytes, overwrite=True)
        return None


class SketchAction(Action):
    """The range-partitioner sampling pass (Terasort's stage 0).

    Scans every record (the same volume as a full read) but keeps only a
    small sample of keys per partition for deriving range bounds.
    """

    def __init__(self, sample_per_partition: int = 20) -> None:
        self.sample_per_partition = sample_per_partition

    def process_partition(self, records, split):
        if records is None:
            return None
        keys = [key for key, _value in records]
        if len(keys) <= self.sample_per_partition:
            return keys
        step = max(1, len(keys) // self.sample_per_partition)
        return keys[::step][: self.sample_per_partition]

    def finalize(self, results, rdd):
        if any(r is None for r in results):
            return None  # synthetic data: bounds are never consulted
        sample: List[Any] = []
        for keys in results:
            sample.extend(keys)
        return sample


_EMPTY = object()
