"""Data-volume bookkeeping: per-partition record/byte counts.

The engine runs in two modes (DESIGN.md section 2):

* **materialised** -- small Python datasets are actually computed, and their
  sizes are estimated with :func:`estimate_size`, so the simulator still
  charges realistic I/O and CPU for them;
* **synthetic** -- benchmark-scale datasets (120 GiB Terasort inputs) are
  never materialised; transformations propagate :class:`SizeInfo` through the
  lineage analytically using per-operator factors.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class SizeInfo:
    """Record count and serialized byte volume of one partition."""

    records: float
    bytes: float

    def __post_init__(self) -> None:
        if self.records < 0 or self.bytes < 0:
            raise ValueError(f"negative size: {self}")

    def scaled(self, records_factor: float = 1.0, bytes_factor: float = 1.0) -> "SizeInfo":
        return SizeInfo(self.records * records_factor, self.bytes * bytes_factor)

    def __add__(self, other: "SizeInfo") -> "SizeInfo":
        return SizeInfo(self.records + other.records, self.bytes + other.bytes)

    @property
    def bytes_per_record(self) -> float:
        return self.bytes / self.records if self.records else 0.0


ZERO_SIZE = SizeInfo(0.0, 0.0)


def estimate_size(obj: Any, _depth: int = 0) -> float:
    """Rough serialized-size estimate of a Python object, in bytes.

    This plays the role of Spark's ``SizeEstimator``: good enough to charge
    plausible I/O volumes for materialised datasets.  Containers are sampled
    (first 100 elements) to keep the estimate cheap.
    """
    if _depth > 6:
        return 8.0
    if obj is None:
        return 1.0
    if isinstance(obj, bool):
        return 1.0
    if isinstance(obj, int):
        return 8.0
    if isinstance(obj, float):
        return 8.0
    if isinstance(obj, str):
        return 2.0 + len(obj)
    if isinstance(obj, bytes):
        return 2.0 + len(obj)
    if isinstance(obj, dict):
        return 8.0 + _estimate_elements(
            (item for pair in obj.items() for item in pair), len(obj) * 2, _depth
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8.0 + _estimate_elements(obj, len(obj), _depth)
    if hasattr(obj, "__dict__"):
        return 16.0 + estimate_size(vars(obj), _depth + 1)
    return float(sys.getsizeof(obj))


def _estimate_elements(elements: Iterable[Any], count: int, depth: int) -> float:
    if count == 0:
        return 0.0
    sample = []
    for element in elements:
        sample.append(estimate_size(element, depth + 1))
        if len(sample) >= 100:
            break
    mean = sum(sample) / len(sample)
    return mean * count


def estimate_partition(records: Iterable[Any]) -> SizeInfo:
    """Size a materialised partition."""
    records = list(records)
    return SizeInfo(records=float(len(records)), bytes=estimate_size(records))
