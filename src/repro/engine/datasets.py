"""Dataset catalog: what the bytes in the DFS *are*.

The DFS tracks placement; this catalog tracks content.  A dataset is either

* **materialised** -- real Python records are stored, tasks can compute on
  them (tests, examples); or
* **synthetic** -- only record/byte counts are known (benchmark-scale inputs
  like the 120 GiB Terasort file); tasks simulate I/O and CPU but never see
  records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine.sizing import SizeInfo


@dataclass
class DatasetInfo:
    """Content description of one DFS path."""

    path: str
    size: SizeInfo
    data: Optional[List[Any]] = None

    @property
    def records_available(self) -> bool:
        return self.data is not None

    @property
    def records(self) -> float:
        return self.size.records

    def partition_records(self, split: int, num_partitions: int) -> Optional[List[Any]]:
        """The records of one partition, or None for synthetic datasets.

        Partitions are contiguous slices, matching how line-oriented input
        formats split files.
        """
        if self.data is None:
            return None
        total = len(self.data)
        start = split * total // num_partitions
        end = (split + 1) * total // num_partitions
        return self.data[start:end]


class DatasetCatalog:
    """All known dataset contents, keyed by DFS path."""

    def __init__(self) -> None:
        self._datasets: Dict[str, DatasetInfo] = {}

    def register_input(self, path: str, size: SizeInfo,
                       records: Optional[List[Any]] = None) -> DatasetInfo:
        if path in self._datasets:
            raise FileExistsError(f"dataset already registered: {path}")
        if records is not None and len(records) != int(size.records):
            raise ValueError(
                f"record count mismatch for {path}: declared {size.records}, "
                f"got {len(records)}"
            )
        info = DatasetInfo(path=path, size=size, data=records)
        self._datasets[path] = info
        return info

    def register_output(self, path: str, size: SizeInfo,
                        records: Optional[List[Any]] = None) -> DatasetInfo:
        """Outputs may overwrite previous runs' outputs."""
        info = DatasetInfo(path=path, size=size, data=records)
        self._datasets[path] = info
        return info

    def describe(self, path: str) -> DatasetInfo:
        try:
            return self._datasets[path]
        except KeyError:
            raise FileNotFoundError(f"no dataset registered for {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._datasets
