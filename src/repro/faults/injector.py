"""Replays a :class:`~repro.faults.plan.FaultPlan` against a context.

The injector is the only bridge between the declarative plan and the
engine: timed faults (executor/node loss, disk episodes, stragglers) are
scheduled on the simulator clock when :meth:`FaultInjector.wire` runs, and
task crashes are answered point-wise through :meth:`crash_point`, which the
executor consults once per launched attempt.

Determinism rules:

* crash decisions hash ``(seed, stage ordinal, partition, attempt)`` --
  they never consume a shared RNG stream, so injecting a fault cannot
  perturb the workload's own random draws;
* timed faults use :meth:`Simulator.call_at`, which keeps the event
  queue's insertion-order tie-breaking;
* a context built without a plan never reaches this module.

Scope note: the injector replays only the **engine scope** of a plan.
A plan's ``cluster:`` section (schema ``repro.faults/2`` -- node churn,
slot flaps, poison jobs, demand surges) is interpreted by the service
layer (:mod:`repro.cluster.scheduler` via ``repro serve``) and is
deliberately invisible here, so a cluster-only plan leaves inner engine
runs byte-identical to faultless ones (FAULTS.md section 8).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.faults.plan import FaultPlan


def hash01(*parts) -> float:
    """Deterministically map arbitrary parts to a float in [0, 1)."""
    token = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class FaultInjector:
    """Applies one fault plan to one :class:`SparkContext`."""

    def __init__(self, ctx, plan: FaultPlan) -> None:
        plan.validate()
        self.ctx = ctx
        self.plan = plan
        #: stage_id -> ordinal position in the run (first-seen order), the
        #: coordinate system plans use to address stages.
        self._ordinals: Dict[int, int] = {}
        self._crashes: Dict[Tuple[int, int, int], float] = {
            (crash.stage_ordinal, crash.partition, crash.attempt): crash.at_fraction
            for crash in plan.task_crashes
        }
        self._crash_budget = (
            plan.crash_rate.max_crashes if plan.crash_rate is not None else 0
        )

    # -- setup -------------------------------------------------------------------

    def wire(self) -> None:
        """Apply conf overrides and schedule every timed fault."""
        spec = self.plan.speculation
        if spec is not None:
            conf = self.ctx.conf
            conf.set("spark.speculation", spec.enabled)
            conf.set("spark.speculation.multiplier", spec.multiplier)
            conf.set("spark.speculation.quantile", spec.quantile)
        sim = self.ctx.sim
        for loss in self.plan.executor_losses:
            sim.call_at(
                loss.at,
                lambda loss=loss: self._lose_executor(
                    loss.executor_id, "executor-loss"
                ),
            )
        for loss in self.plan.node_losses:
            sim.call_at(loss.at, lambda loss=loss: self._lose_node(loss.node_id))
        for episode in self.plan.disk_degradations:
            sim.call_at(
                episode.at, lambda episode=episode: self._scale_node(
                    episode.node_id, "disk-degrade-start",
                    disk_factor=episode.factor,
                )
            )
            sim.call_at(
                episode.at + episode.duration,
                lambda episode=episode: self._scale_node(
                    episode.node_id, "disk-degrade-end",
                    disk_factor=1.0 / episode.factor,
                ),
            )
        for straggler in self.plan.stragglers:
            sim.call_at(
                straggler.at, lambda straggler=straggler: self._scale_node(
                    straggler.node_id, "straggler-start",
                    cpu_factor=straggler.cpu_factor,
                    disk_factor=straggler.disk_factor,
                )
            )
            sim.call_at(
                straggler.at + straggler.duration,
                lambda straggler=straggler: self._scale_node(
                    straggler.node_id, "straggler-end",
                    cpu_factor=1.0 / straggler.cpu_factor,
                    disk_factor=1.0 / straggler.disk_factor,
                ),
            )

    # -- scheduler hooks -----------------------------------------------------------

    def on_stage_start(self, stage) -> None:
        """Assign the stage its plan-addressable ordinal (first-seen order)."""
        if stage.stage_id not in self._ordinals:
            self._ordinals[stage.stage_id] = len(self._ordinals)

    def crash_point(self, stage_id: int, partition: int,
                    attempt: int) -> Optional[float]:
        """Should this attempt crash?  Returns the chunk fraction, or None.

        Consulted exactly once per launched attempt.  Explicit
        :class:`TaskCrash` entries win; otherwise the seeded rate decides.
        """
        ordinal = self._ordinals.get(stage_id)
        if ordinal is None:
            return None
        explicit = self._crashes.get((ordinal, partition, attempt))
        if explicit is not None:
            return explicit
        rate = self.plan.crash_rate
        if rate is None or self._crash_budget <= 0:
            return None
        roll = hash01(self.plan.seed, "crash", ordinal, partition, attempt)
        if roll >= rate.probability:
            return None
        self._crash_budget -= 1
        return hash01(self.plan.seed, "crash-frac", ordinal, partition, attempt)

    # -- timed fault appliers ---------------------------------------------------------

    def _lose_executor(self, executor_id: int, reason: str) -> None:
        executors = self.ctx.executors
        if not 0 <= executor_id < len(executors):
            raise ValueError(
                f"fault plan names executor {executor_id}, cluster has "
                f"{len(executors)}"
            )
        executor = executors[executor_id]
        if not executor.alive:
            return
        self.ctx.scheduler.on_executor_lost(executor, reason=reason)

    def _lose_node(self, node_id: int) -> None:
        node = self.ctx.cluster.node(node_id)
        if not node.alive:
            return
        node.alive = False
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant("fault", "node-loss", node_id=node_id)
        self.ctx.metrics.counter("faults.node_losses").inc()
        # DFS replicas on the machine vanish first so relaunched tasks plan
        # their reads against the surviving replica set.
        lost_paths = self.ctx.dfs.fail_node(node_id)
        if lost_paths and tracer.enabled:
            tracer.instant(
                "fault", "dfs-data-lost",
                node_id=node_id, paths=sorted(lost_paths),
            )
        for executor in self.ctx.executors:
            if executor.node.node_id == node_id and executor.alive:
                self.ctx.scheduler.on_executor_lost(executor, reason="node-loss")

    def _scale_node(self, node_id: int, name: str,
                    cpu_factor: Optional[float] = None,
                    disk_factor: Optional[float] = None) -> None:
        """Multiply a node's resource speeds; episodes compose and reverse
        themselves by applying the reciprocal at their end time."""
        node = self.ctx.cluster.node(node_id)
        if not node.alive:
            return
        # sync() first: work done so far must be settled at the old rate
        # before the multiplier changes what one second buys.
        if cpu_factor is not None:
            node.cpu.sync()
            node.cpu.speed_factor *= cpu_factor
            node.cpu.notify_rates_changed()
        if disk_factor is not None:
            node.disk.sync()
            node.disk.speed_factor *= disk_factor
            node.disk.notify_rates_changed()
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant(
                "fault", name,
                node_id=node_id,
                cpu_speed=node.cpu.speed_factor,
                disk_speed=node.disk.speed_factor,
            )
        if name.endswith("-start"):
            self.ctx.metrics.counter(f"faults.{name[:-6]}s").inc()
