"""Seeded, deterministic fault injection for the simulated cluster.

``repro.faults`` turns the simulator into a chaos-testing harness: a
:class:`FaultPlan` declares *what goes wrong and when* (task crashes,
executor/node loss, disk-degradation episodes, stragglers), and the
:class:`FaultInjector` replays it against a :class:`~repro.engine.context.
SparkContext`.  Recovery -- retries, lineage recomputation, replica
failover, speculative execution -- lives in the engine; FAULTS.md documents
the full failure model.

Plans may also carry a *cluster-scope* section (``repro.faults/2``):
node churn, executor-slot flaps, per-tenant poison jobs, and demand
surges, interpreted by the multi-tenant service layer
(:mod:`repro.cluster.scheduler` / ``repro serve``) together with the
overload-protection policy in :class:`ProtectionConfig`.  The engine-side
injector ignores that section entirely.

Everything is deterministic: the same seed and plan produce bit-identical
timelines, and a context built *without* a plan is untouched (no extra
events, no extra trace output).
"""

from repro.faults.injector import FaultInjector, hash01
from repro.faults.plan import (
    CANNED_CHAOS,
    CANNED_PLANS,
    PLAN_SCHEMA,
    PLAN_SCHEMA_V2,
    ClusterFaults,
    DemandSurge,
    DiskDegrade,
    ExecutorLoss,
    FaultPlan,
    FaultPlanError,
    NodeChurn,
    NodeLoss,
    ProtectionConfig,
    SlotFlap,
    SpeculationConfig,
    Straggler,
    TaskCrash,
    TaskCrashRate,
    TenantPoison,
)

__all__ = [
    "CANNED_CHAOS",
    "CANNED_PLANS",
    "PLAN_SCHEMA",
    "PLAN_SCHEMA_V2",
    "ClusterFaults",
    "DemandSurge",
    "DiskDegrade",
    "ExecutorLoss",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "NodeChurn",
    "NodeLoss",
    "ProtectionConfig",
    "SlotFlap",
    "SpeculationConfig",
    "Straggler",
    "TaskCrash",
    "TaskCrashRate",
    "TenantPoison",
    "hash01",
]
