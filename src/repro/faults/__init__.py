"""Seeded, deterministic fault injection for the simulated cluster.

``repro.faults`` turns the simulator into a chaos-testing harness: a
:class:`FaultPlan` declares *what goes wrong and when* (task crashes,
executor/node loss, disk-degradation episodes, stragglers), and the
:class:`FaultInjector` replays it against a :class:`~repro.engine.context.
SparkContext`.  Recovery -- retries, lineage recomputation, replica
failover, speculative execution -- lives in the engine; FAULTS.md documents
the full failure model.

Everything is deterministic: the same seed and plan produce bit-identical
timelines, and a context built *without* a plan is untouched (no extra
events, no extra trace output).
"""

from repro.faults.injector import FaultInjector, hash01
from repro.faults.plan import (
    CANNED_PLANS,
    PLAN_SCHEMA,
    DiskDegrade,
    ExecutorLoss,
    FaultPlan,
    FaultPlanError,
    NodeLoss,
    SpeculationConfig,
    Straggler,
    TaskCrash,
    TaskCrashRate,
)

__all__ = [
    "CANNED_PLANS",
    "PLAN_SCHEMA",
    "DiskDegrade",
    "ExecutorLoss",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "NodeLoss",
    "SpeculationConfig",
    "Straggler",
    "TaskCrash",
    "TaskCrashRate",
    "hash01",
]
