"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a plain dataclass tree with a stable JSON wire
format (``repro.faults/1``) so plans can be checked into a repo, attached
to a CI run, or generated from the CLI (``repro faults generate``).  Times
are *simulated* seconds; stages are addressed by their ordinal position in
the run (0, 1, ...) because stage ids are an implementation detail of the
DAG builder.

The plan only *describes* faults.  Interpreting it -- including the seeded
pseudo-random crash sampling -- is :mod:`repro.faults.injector`'s job.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Wire-format marker checked on load; bump on incompatible change.
PLAN_SCHEMA = "repro.faults/1"


class FaultPlanError(ValueError):
    """A fault plan failed validation or could not be parsed."""


@dataclass
class TaskCrash:
    """Crash one specific task attempt partway through its run.

    ``at_fraction`` is the fraction of the task's work chunks completed
    before the crash fires (0.0 = immediately, 1.0 = after the last chunk
    but before the completion message).
    """

    stage_ordinal: int
    partition: int
    attempt: int = 0
    at_fraction: float = 0.5

    def validate(self) -> None:
        if self.stage_ordinal < 0:
            raise FaultPlanError(f"stage_ordinal must be >= 0, got {self.stage_ordinal}")
        if self.partition < 0:
            raise FaultPlanError(f"partition must be >= 0, got {self.partition}")
        if self.attempt < 0:
            raise FaultPlanError(f"attempt must be >= 0, got {self.attempt}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"at_fraction must be in [0, 1], got {self.at_fraction}"
            )


@dataclass
class TaskCrashRate:
    """Crash a seeded pseudo-random sample of task attempts.

    Each attempt crashes with ``probability``, decided by hashing
    ``(plan seed, stage ordinal, partition, attempt)`` -- not by drawing
    from a shared RNG -- so one task's fate never depends on scheduling
    order.  ``max_crashes`` caps the total so a high rate cannot push every
    partition past ``spark.task.maxFailures``.
    """

    probability: float
    max_crashes: int = 10

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_crashes < 0:
            raise FaultPlanError(f"max_crashes must be >= 0, got {self.max_crashes}")


@dataclass
class ExecutorLoss:
    """Kill one executor process at an absolute simulated time.

    Its running tasks die, its shuffle outputs are discarded (they lived on
    its node's local disk), and it never comes back.  The node's DFS blocks
    survive -- this models a JVM crash, not a machine failure.
    """

    executor_id: int
    at: float

    def validate(self) -> None:
        if self.executor_id < 0:
            raise FaultPlanError(f"executor_id must be >= 0, got {self.executor_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")


@dataclass
class NodeLoss:
    """Lose a whole machine: its executor, its DFS replicas, its disks."""

    node_id: int
    at: float

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")


@dataclass
class DiskDegrade:
    """Scale one node's disk rate curve by ``factor`` for ``duration``.

    Models a flaky device or a noisy neighbour saturating the spindle.
    Episodes compose multiplicatively when they overlap.
    """

    node_id: int
    at: float
    duration: float
    factor: float = 0.25

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {self.duration}")
        if self.factor <= 0:
            raise FaultPlanError(f"factor must be > 0, got {self.factor}")


@dataclass
class Straggler:
    """Slow a whole node down (CPU and disk) for a while.

    The classic speculative-execution target: tasks on the node keep
    running, just several times slower than their twins elsewhere.
    """

    node_id: int
    at: float
    duration: float
    cpu_factor: float = 0.3
    disk_factor: float = 0.3

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {self.duration}")
        if self.cpu_factor <= 0 or self.disk_factor <= 0:
            raise FaultPlanError(
                f"straggler factors must be > 0, got cpu={self.cpu_factor} "
                f"disk={self.disk_factor}"
            )


@dataclass
class SpeculationConfig:
    """Speculative-execution settings the plan wants for this run.

    Applied as ``spark.speculation*`` overrides when the injector wires up,
    so a plan is self-contained: loading it reproduces the whole scenario.
    """

    enabled: bool = False
    multiplier: float = 2.0
    quantile: float = 0.75

    def validate(self) -> None:
        if self.multiplier <= 1.0:
            raise FaultPlanError(
                f"speculation multiplier must be > 1, got {self.multiplier}"
            )
        if not 0.0 < self.quantile <= 1.0:
            raise FaultPlanError(
                f"speculation quantile must be in (0, 1], got {self.quantile}"
            )


@dataclass
class FaultPlan:
    """Everything that will go wrong in one run, plus the seed deciding it."""

    seed: int = 0
    task_crashes: List[TaskCrash] = field(default_factory=list)
    crash_rate: Optional[TaskCrashRate] = None
    executor_losses: List[ExecutorLoss] = field(default_factory=list)
    node_losses: List[NodeLoss] = field(default_factory=list)
    disk_degradations: List[DiskDegrade] = field(default_factory=list)
    stragglers: List[Straggler] = field(default_factory=list)
    speculation: Optional[SpeculationConfig] = None

    def validate(self) -> None:
        for fault in self.all_faults():
            fault.validate()
        if self.crash_rate is not None:
            self.crash_rate.validate()
        if self.speculation is not None:
            self.speculation.validate()
        seen_crashes = set()
        for crash in self.task_crashes:
            key = (crash.stage_ordinal, crash.partition, crash.attempt)
            if key in seen_crashes:
                raise FaultPlanError(
                    f"duplicate task crash for stage {key[0]} partition "
                    f"{key[1]} attempt {key[2]}"
                )
            seen_crashes.add(key)

    def all_faults(self) -> List[Any]:
        return (
            list(self.task_crashes)
            + list(self.executor_losses)
            + list(self.node_losses)
            + list(self.disk_degradations)
            + list(self.stragglers)
        )

    @property
    def is_empty(self) -> bool:
        return (
            not self.all_faults()
            and self.crash_rate is None
            and self.speculation is None
        )

    # -- JSON wire format ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"schema": PLAN_SCHEMA, "seed": self.seed}
        for key in ("task_crashes", "executor_losses", "node_losses",
                    "disk_degradations", "stragglers"):
            items = getattr(self, key)
            if items:
                payload[key] = [asdict(item) for item in items]
        if self.crash_rate is not None:
            payload["crash_rate"] = asdict(self.crash_rate)
        if self.speculation is not None:
            payload["speculation"] = asdict(self.speculation)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(payload).__name__}")
        schema = payload.get("schema")
        if schema != PLAN_SCHEMA:
            raise FaultPlanError(
                f"unsupported fault-plan schema {schema!r} (expected {PLAN_SCHEMA!r})"
            )
        known = {
            "schema", "seed", "task_crashes", "crash_rate", "executor_losses",
            "node_losses", "disk_degradations", "stragglers", "speculation",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields: {', '.join(unknown)}")

        def build(ctor, items):
            try:
                return [ctor(**item) for item in items]
            except TypeError as exc:
                raise FaultPlanError(f"bad {ctor.__name__} entry: {exc}") from None

        try:
            plan = cls(
                seed=int(payload.get("seed", 0)),
                task_crashes=build(TaskCrash, payload.get("task_crashes", [])),
                crash_rate=(
                    TaskCrashRate(**payload["crash_rate"])
                    if "crash_rate" in payload else None
                ),
                executor_losses=build(ExecutorLoss, payload.get("executor_losses", [])),
                node_losses=build(NodeLoss, payload.get("node_losses", [])),
                disk_degradations=build(DiskDegrade, payload.get("disk_degradations", [])),
                stragglers=build(Straggler, payload.get("stragglers", [])),
                speculation=(
                    SpeculationConfig(**payload["speculation"])
                    if "speculation" in payload else None
                ),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from None
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        from repro.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


# -- canned plans (CLI ``repro faults generate``) ------------------------------------


def node_loss_plan(node_id: int = 1, at: float = 30.0, seed: int = 0) -> FaultPlan:
    """Lose one machine mid-run: the canonical recovery scenario."""
    return FaultPlan(seed=seed, node_losses=[NodeLoss(node_id=node_id, at=at)])


def executor_loss_plan(executor_id: int = 1, at: float = 30.0,
                       seed: int = 0) -> FaultPlan:
    """Kill one executor JVM; its node (and DFS replicas) survive."""
    return FaultPlan(
        seed=seed, executor_losses=[ExecutorLoss(executor_id=executor_id, at=at)]
    )


def task_crash_plan(probability: float = 0.05, max_crashes: int = 10,
                    seed: int = 0) -> FaultPlan:
    """Random task crashes at a given rate, retried transparently."""
    return FaultPlan(
        seed=seed,
        crash_rate=TaskCrashRate(probability=probability, max_crashes=max_crashes),
    )


def disk_degrade_plan(node_id: int = 1, at: float = 10.0, duration: float = 60.0,
                      factor: float = 0.25, seed: int = 0) -> FaultPlan:
    """One node's disk runs at ``factor`` of its rate curve for a while."""
    return FaultPlan(
        seed=seed,
        disk_degradations=[
            DiskDegrade(node_id=node_id, at=at, duration=duration, factor=factor)
        ],
    )


def straggler_plan(node_id: int = 1, at: float = 10.0, duration: float = 120.0,
                   factor: float = 0.3, seed: int = 0,
                   speculation: bool = True) -> FaultPlan:
    """A slow node plus (by default) speculation to route around it."""
    return FaultPlan(
        seed=seed,
        stragglers=[
            Straggler(node_id=node_id, at=at, duration=duration,
                      cpu_factor=factor, disk_factor=factor)
        ],
        speculation=SpeculationConfig(enabled=speculation) if speculation else None,
    )


CANNED_PLANS = {
    "node-loss": node_loss_plan,
    "executor-loss": executor_loss_plan,
    "task-crashes": task_crash_plan,
    "disk-degrade": disk_degrade_plan,
    "stragglers": straggler_plan,
}
