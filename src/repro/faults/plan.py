"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a plain dataclass tree with a stable JSON wire
format (``repro.faults/1``) so plans can be checked into a repo, attached
to a CI run, or generated from the CLI (``repro faults generate``).  Times
are *simulated* seconds; stages are addressed by their ordinal position in
the run (0, 1, ...) because stage ids are an implementation detail of the
DAG builder.

Plans have two scopes.  *Engine-scope* faults (task crashes, node loss,
disk degradation, stragglers) hit the inner single-job simulation and are
interpreted by :mod:`repro.faults.injector`.  *Cluster-scope* faults (the
optional ``cluster`` section, wire format ``repro.faults/2``) hit the
multi-tenant service layer above it -- node churn, executor-slot flaps,
per-tenant poison jobs, demand surges -- and are interpreted by
:class:`repro.cluster.scheduler.ClusterScheduler` together with the
overload-protection policy in :class:`ProtectionConfig` (see FAULTS.md,
"Cluster failure model").  A plan without a ``cluster`` section still
serialises as ``repro.faults/1``, byte for byte, so existing plans and
goldens are untouched.

The plan only *describes* faults.  Interpreting it -- including the seeded
pseudo-random crash sampling -- is the injector's / scheduler's job.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional

#: Wire-format marker checked on load; bump on incompatible change.
PLAN_SCHEMA = "repro.faults/1"
#: Wire format for plans that carry a cluster-scope ``cluster`` section.
PLAN_SCHEMA_V2 = "repro.faults/2"
SUPPORTED_SCHEMAS = (PLAN_SCHEMA, PLAN_SCHEMA_V2)


class FaultPlanError(ValueError):
    """A fault plan failed validation or could not be parsed."""


@dataclass
class TaskCrash:
    """Crash one specific task attempt partway through its run.

    ``at_fraction`` is the fraction of the task's work chunks completed
    before the crash fires (0.0 = immediately, 1.0 = after the last chunk
    but before the completion message).
    """

    stage_ordinal: int
    partition: int
    attempt: int = 0
    at_fraction: float = 0.5

    def validate(self) -> None:
        if self.stage_ordinal < 0:
            raise FaultPlanError(f"stage_ordinal must be >= 0, got {self.stage_ordinal}")
        if self.partition < 0:
            raise FaultPlanError(f"partition must be >= 0, got {self.partition}")
        if self.attempt < 0:
            raise FaultPlanError(f"attempt must be >= 0, got {self.attempt}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"at_fraction must be in [0, 1], got {self.at_fraction}"
            )


@dataclass
class TaskCrashRate:
    """Crash a seeded pseudo-random sample of task attempts.

    Each attempt crashes with ``probability``, decided by hashing
    ``(plan seed, stage ordinal, partition, attempt)`` -- not by drawing
    from a shared RNG -- so one task's fate never depends on scheduling
    order.  ``max_crashes`` caps the total so a high rate cannot push every
    partition past ``spark.task.maxFailures``.
    """

    probability: float
    max_crashes: int = 10

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_crashes < 0:
            raise FaultPlanError(f"max_crashes must be >= 0, got {self.max_crashes}")


@dataclass
class ExecutorLoss:
    """Kill one executor process at an absolute simulated time.

    Its running tasks die, its shuffle outputs are discarded (they lived on
    its node's local disk), and it never comes back.  The node's DFS blocks
    survive -- this models a JVM crash, not a machine failure.
    """

    executor_id: int
    at: float

    def validate(self) -> None:
        if self.executor_id < 0:
            raise FaultPlanError(f"executor_id must be >= 0, got {self.executor_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")


@dataclass
class NodeLoss:
    """Lose a whole machine: its executor, its DFS replicas, its disks."""

    node_id: int
    at: float

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")


@dataclass
class DiskDegrade:
    """Scale one node's disk rate curve by ``factor`` for ``duration``.

    Models a flaky device or a noisy neighbour saturating the spindle.
    Episodes compose multiplicatively when they overlap.
    """

    node_id: int
    at: float
    duration: float
    factor: float = 0.25

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {self.duration}")
        if self.factor <= 0:
            raise FaultPlanError(f"factor must be > 0, got {self.factor}")


@dataclass
class Straggler:
    """Slow a whole node down (CPU and disk) for a while.

    The classic speculative-execution target: tasks on the node keep
    running, just several times slower than their twins elsewhere.
    """

    node_id: int
    at: float
    duration: float
    cpu_factor: float = 0.3
    disk_factor: float = 0.3

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {self.duration}")
        if self.cpu_factor <= 0 or self.disk_factor <= 0:
            raise FaultPlanError(
                f"straggler factors must be > 0, got cpu={self.cpu_factor} "
                f"disk={self.disk_factor}"
            )


@dataclass
class SpeculationConfig:
    """Speculative-execution settings the plan wants for this run.

    Applied as ``spark.speculation*`` overrides when the injector wires up,
    so a plan is self-contained: loading it reproduces the whole scenario.
    """

    enabled: bool = False
    multiplier: float = 2.0
    quantile: float = 0.75

    def validate(self) -> None:
        if self.multiplier <= 1.0:
            raise FaultPlanError(
                f"speculation multiplier must be > 1, got {self.multiplier}"
            )
        if not 0.0 < self.quantile <= 1.0:
            raise FaultPlanError(
                f"speculation quantile must be in (0, 1], got {self.quantile}"
            )


# -- cluster scope (repro.faults/2) --------------------------------------------------


@dataclass
class NodeChurn:
    """One service-layer node goes down at ``down_at`` and (optionally) back up.

    Jobs holding slots on the node are killed and requeue with retry/backoff
    under :class:`ProtectionConfig`; ``duration=None`` means the node never
    returns.  Overlapping episodes on the same node compose (the node is up
    only when no episode holds it down).
    """

    node_id: int
    down_at: float
    duration: Optional[float] = None

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.down_at < 0:
            raise FaultPlanError(f"down_at must be >= 0, got {self.down_at}")
        if self.duration is not None and not (
                math.isfinite(self.duration) and self.duration > 0):
            raise FaultPlanError(
                f"duration must be > 0 and finite (or null), got {self.duration}"
            )


@dataclass
class SlotFlap:
    """One executor slot drops out of the grantable pool for a window.

    Unlike :class:`NodeChurn` this *drains* instead of crashing: a job
    already running on the slot finishes normally, but the slot is not
    granted to new work while flapped -- the graceful-decommission /
    flaky-agent failure mode.
    """

    node_id: int
    at: float
    duration: float

    def validate(self) -> None:
        if self.node_id < 0:
            raise FaultPlanError(f"node_id must be >= 0, got {self.node_id}")
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if not (math.isfinite(self.duration) and self.duration > 0):
            raise FaultPlanError(
                f"duration must be > 0 and finite, got {self.duration}"
            )


@dataclass
class TenantPoison:
    """Seeded per-tenant poison jobs: attempts fail partway through.

    Each attempt of a matching tenant's job fails with ``probability``
    after ``at_fraction`` of its service time, decided by a dedicated
    chaos substream keyed on ``(job_id, attempt)`` so one job's fate never
    depends on scheduling order.  ``tenant="*"`` matches every tenant;
    ``max_poisoned`` caps total poisoned attempts.  Failures count toward
    the tenant's circuit breaker.
    """

    tenant: str
    probability: float
    max_poisoned: int = 10
    at_fraction: float = 0.5

    def validate(self) -> None:
        if not self.tenant:
            raise FaultPlanError("poison tenant must be non-empty ('*' = all)")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_poisoned < 0:
            raise FaultPlanError(
                f"max_poisoned must be >= 0, got {self.max_poisoned}"
            )
        if not 0.0 < self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"at_fraction must be in (0, 1], got {self.at_fraction}"
            )


@dataclass
class DemandSurge:
    """Arrival-rate multiplier over a time window.

    ``factor > 1`` superposes an extra Poisson process at
    ``(factor - 1) x base rate`` for each matching Poisson tenant (drawn
    from dedicated chaos substreams, so the base arrival draws are
    untouched); ``factor < 1`` thins in-window arrivals, keeping each with
    probability ``factor``.  ``tenant=None`` hits every tenant.
    """

    at: float
    duration: float
    factor: float
    tenant: Optional[str] = None

    def validate(self) -> None:
        if self.at < 0:
            raise FaultPlanError(f"at must be >= 0, got {self.at}")
        if not (math.isfinite(self.duration) and self.duration > 0):
            raise FaultPlanError(
                f"duration must be > 0 and finite, got {self.duration}"
            )
        if not (math.isfinite(self.factor) and self.factor > 0):
            raise FaultPlanError(
                f"factor must be > 0 and finite, got {self.factor}"
            )


@dataclass
class ProtectionConfig:
    """Resilience policy the service runs under (chaos or not).

    Lives in the plan for the same reason :class:`SpeculationConfig` does:
    a plan is self-contained -- loading it reproduces the whole scenario,
    protection knobs included.  ``None`` disables the respective guard.
    """

    #: Retry budget per job; a killed/poisoned attempt past this aborts.
    max_retries: int = 3
    #: Exponential backoff: delay = min(cap, base * 2^(attempt-1)) * (1 + jitter*u).
    backoff_base: float = 2.0
    backoff_cap: float = 60.0
    backoff_jitter: float = 0.5
    #: Absolute per-job sojourn bound (arrival -> completion); blown = abort.
    deadline: Optional[float] = None
    #: Latency SLO for *completed* jobs; blown completions count as violations.
    slo_latency: Optional[float] = None
    #: Admission: shed arrivals/requeues once this many jobs queue.
    max_queue: Optional[int] = None
    #: Admission: shed when estimated wait (queued work / live slots) exceeds this.
    max_wait: Optional[float] = None
    #: Circuit breaker: open after K consecutive tenant-attributable failures.
    breaker_failures: Optional[int] = None
    breaker_cooldown: float = 60.0
    breaker_jitter: float = 0.25
    #: Graceful degradation: shrink slot grants once this many jobs queue.
    degrade_queue: Optional[int] = None
    degrade_factor: float = 0.5

    def validate(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise FaultPlanError(
                f"backoff base/cap must be > 0, got {self.backoff_base}"
                f"/{self.backoff_cap}"
            )
        if self.backoff_jitter < 0:
            raise FaultPlanError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        for name in ("deadline", "slo_latency", "max_wait"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise FaultPlanError(f"{name} must be > 0, got {value}")
        if self.max_queue is not None and self.max_queue < 0:
            raise FaultPlanError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise FaultPlanError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown <= 0:
            raise FaultPlanError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )
        if self.breaker_jitter < 0:
            raise FaultPlanError(
                f"breaker_jitter must be >= 0, got {self.breaker_jitter}"
            )
        if self.degrade_queue is not None and self.degrade_queue < 1:
            raise FaultPlanError(
                f"degrade_queue must be >= 1, got {self.degrade_queue}"
            )
        if not 0.0 < self.degrade_factor < 1.0:
            raise FaultPlanError(
                f"degrade_factor must be in (0, 1), got {self.degrade_factor}"
            )


@dataclass
class ClusterFaults:
    """The cluster-scope section of a ``repro.faults/2`` plan."""

    node_churn: List[NodeChurn] = field(default_factory=list)
    slot_flaps: List[SlotFlap] = field(default_factory=list)
    poison: List[TenantPoison] = field(default_factory=list)
    surges: List[DemandSurge] = field(default_factory=list)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)

    def validate(self) -> None:
        for group in (self.node_churn, self.slot_flaps, self.poison,
                      self.surges):
            for item in group:
                item.validate()
        self.protection.validate()

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        for key in ("node_churn", "slot_flaps", "poison", "surges"):
            items = getattr(self, key)
            if items:
                payload[key] = [asdict(item) for item in items]
        payload["protection"] = asdict(self.protection)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterFaults":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"cluster section must be an object, got {type(payload).__name__}"
            )
        known = {"node_churn", "slot_flaps", "poison", "surges", "protection"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown cluster-fault fields: {', '.join(unknown)}"
            )

        def build(ctor, items):
            try:
                return [ctor(**item) for item in items]
            except TypeError as exc:
                raise FaultPlanError(f"bad {ctor.__name__} entry: {exc}") from None

        try:
            section = cls(
                node_churn=build(NodeChurn, payload.get("node_churn", [])),
                slot_flaps=build(SlotFlap, payload.get("slot_flaps", [])),
                poison=build(TenantPoison, payload.get("poison", [])),
                surges=build(DemandSurge, payload.get("surges", [])),
                protection=(
                    ProtectionConfig(**payload["protection"])
                    if "protection" in payload else ProtectionConfig()
                ),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed cluster section: {exc}") from None
        section.validate()
        return section


@dataclass
class FaultPlan:
    """Everything that will go wrong in one run, plus the seed deciding it."""

    seed: int = 0
    task_crashes: List[TaskCrash] = field(default_factory=list)
    crash_rate: Optional[TaskCrashRate] = None
    executor_losses: List[ExecutorLoss] = field(default_factory=list)
    node_losses: List[NodeLoss] = field(default_factory=list)
    disk_degradations: List[DiskDegrade] = field(default_factory=list)
    stragglers: List[Straggler] = field(default_factory=list)
    speculation: Optional[SpeculationConfig] = None
    #: Cluster-scope section (repro.faults/2); ignored by the inner engine.
    cluster: Optional[ClusterFaults] = None

    def validate(self) -> None:
        for fault in self.all_faults():
            fault.validate()
        if self.crash_rate is not None:
            self.crash_rate.validate()
        if self.speculation is not None:
            self.speculation.validate()
        if self.cluster is not None:
            self.cluster.validate()
        seen_crashes = set()
        for crash in self.task_crashes:
            key = (crash.stage_ordinal, crash.partition, crash.attempt)
            if key in seen_crashes:
                raise FaultPlanError(
                    f"duplicate task crash for stage {key[0]} partition "
                    f"{key[1]} attempt {key[2]}"
                )
            seen_crashes.add(key)

    def all_faults(self) -> List[Any]:
        return (
            list(self.task_crashes)
            + list(self.executor_losses)
            + list(self.node_losses)
            + list(self.disk_degradations)
            + list(self.stragglers)
        )

    @property
    def is_empty(self) -> bool:
        return (
            not self.all_faults()
            and self.crash_rate is None
            and self.speculation is None
            and self.cluster is None
        )

    # -- scope split --------------------------------------------------------------

    def engine_plan(self) -> "FaultPlan":
        """This plan minus the cluster section: what the inner engine sees."""
        if self.cluster is None:
            return self
        return replace(self, cluster=None)

    def engine_dict(self) -> Optional[Dict[str, Any]]:
        """Wire dict of :meth:`engine_plan`, or ``None`` when nothing remains.

        The service harness passes this (not the full plan) to every inner
        run, so a purely cluster-scope chaos plan leaves the inner engine --
        and its golden event logs -- byte-identical to a fault-free run.
        """
        engine = self.engine_plan()
        if engine.is_empty:
            return None
        return engine.to_dict()

    # -- JSON wire format ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        schema = PLAN_SCHEMA_V2 if self.cluster is not None else PLAN_SCHEMA
        payload: Dict[str, Any] = {"schema": schema, "seed": self.seed}
        for key in ("task_crashes", "executor_losses", "node_losses",
                    "disk_degradations", "stragglers"):
            items = getattr(self, key)
            if items:
                payload[key] = [asdict(item) for item in items]
        if self.crash_rate is not None:
            payload["crash_rate"] = asdict(self.crash_rate)
        if self.speculation is not None:
            payload["speculation"] = asdict(self.speculation)
        if self.cluster is not None:
            payload["cluster"] = self.cluster.to_dict()
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(payload).__name__}")
        schema = payload.get("schema")
        if schema not in SUPPORTED_SCHEMAS:
            raise FaultPlanError(
                f"unsupported fault-plan schema {schema!r} "
                f"(expected one of {SUPPORTED_SCHEMAS})"
            )
        known = {
            "schema", "seed", "task_crashes", "crash_rate", "executor_losses",
            "node_losses", "disk_degradations", "stragglers", "speculation",
        }
        if schema == PLAN_SCHEMA_V2:
            known.add("cluster")
        elif "cluster" in payload:
            raise FaultPlanError(
                f"cluster-scope faults require schema {PLAN_SCHEMA_V2!r}"
            )
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields: {', '.join(unknown)}")

        def build(ctor, items):
            try:
                return [ctor(**item) for item in items]
            except TypeError as exc:
                raise FaultPlanError(f"bad {ctor.__name__} entry: {exc}") from None

        try:
            plan = cls(
                seed=int(payload.get("seed", 0)),
                task_crashes=build(TaskCrash, payload.get("task_crashes", [])),
                crash_rate=(
                    TaskCrashRate(**payload["crash_rate"])
                    if "crash_rate" in payload else None
                ),
                executor_losses=build(ExecutorLoss, payload.get("executor_losses", [])),
                node_losses=build(NodeLoss, payload.get("node_losses", [])),
                disk_degradations=build(DiskDegrade, payload.get("disk_degradations", [])),
                stragglers=build(Straggler, payload.get("stragglers", [])),
                speculation=(
                    SpeculationConfig(**payload["speculation"])
                    if "speculation" in payload else None
                ),
                cluster=(
                    ClusterFaults.from_dict(payload["cluster"])
                    if "cluster" in payload else None
                ),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from None
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        from repro.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


# -- canned plans (CLI ``repro faults generate``) ------------------------------------


def node_loss_plan(node_id: int = 1, at: float = 30.0, seed: int = 0) -> FaultPlan:
    """Lose one machine mid-run: the canonical recovery scenario."""
    return FaultPlan(seed=seed, node_losses=[NodeLoss(node_id=node_id, at=at)])


def executor_loss_plan(executor_id: int = 1, at: float = 30.0,
                       seed: int = 0) -> FaultPlan:
    """Kill one executor JVM; its node (and DFS replicas) survive."""
    return FaultPlan(
        seed=seed, executor_losses=[ExecutorLoss(executor_id=executor_id, at=at)]
    )


def task_crash_plan(probability: float = 0.05, max_crashes: int = 10,
                    seed: int = 0) -> FaultPlan:
    """Random task crashes at a given rate, retried transparently."""
    return FaultPlan(
        seed=seed,
        crash_rate=TaskCrashRate(probability=probability, max_crashes=max_crashes),
    )


def disk_degrade_plan(node_id: int = 1, at: float = 10.0, duration: float = 60.0,
                      factor: float = 0.25, seed: int = 0) -> FaultPlan:
    """One node's disk runs at ``factor`` of its rate curve for a while."""
    return FaultPlan(
        seed=seed,
        disk_degradations=[
            DiskDegrade(node_id=node_id, at=at, duration=duration, factor=factor)
        ],
    )


def straggler_plan(node_id: int = 1, at: float = 10.0, duration: float = 120.0,
                   factor: float = 0.3, seed: int = 0,
                   speculation: bool = True) -> FaultPlan:
    """A slow node plus (by default) speculation to route around it."""
    return FaultPlan(
        seed=seed,
        stragglers=[
            Straggler(node_id=node_id, at=at, duration=duration,
                      cpu_factor=factor, disk_factor=factor)
        ],
        speculation=SpeculationConfig(enabled=speculation) if speculation else None,
    )


CANNED_PLANS = {
    "node-loss": node_loss_plan,
    "executor-loss": executor_loss_plan,
    "task-crashes": task_crash_plan,
    "disk-degrade": disk_degrade_plan,
    "stragglers": straggler_plan,
}


# -- canned cluster chaos plans (CLI ``repro chaos generate``) -----------------------


def node_churn_plan(node_id: int = 1, at: float = 100.0,
                    duration: Optional[float] = 200.0, count: int = 1,
                    every: float = 600.0, seed: int = 0) -> FaultPlan:
    """``count`` down/up episodes on one service node, ``every`` s apart."""
    episodes = [
        NodeChurn(node_id=node_id, down_at=at + index * every,
                  duration=duration)
        for index in range(count)
    ]
    return FaultPlan(seed=seed, cluster=ClusterFaults(node_churn=episodes))


def slot_flap_plan(node_id: int = 0, at: float = 60.0, duration: float = 60.0,
                   count: int = 3, every: float = 180.0,
                   seed: int = 0) -> FaultPlan:
    """Flaky executor slot: repeatedly drained out of the grantable pool."""
    flaps = [
        SlotFlap(node_id=node_id, at=at + index * every, duration=duration)
        for index in range(count)
    ]
    return FaultPlan(seed=seed, cluster=ClusterFaults(slot_flaps=flaps))


def poison_tenant_plan(tenant: str = "*", probability: float = 0.2,
                       max_poisoned: int = 10, seed: int = 0) -> FaultPlan:
    """Poison jobs from one tenant; breaker armed so it can trip."""
    return FaultPlan(
        seed=seed,
        cluster=ClusterFaults(
            poison=[TenantPoison(tenant=tenant, probability=probability,
                                 max_poisoned=max_poisoned)],
            protection=ProtectionConfig(breaker_failures=3),
        ),
    )


def surge_plan(at: float = 200.0, duration: float = 300.0,
               factor: float = 3.0, tenant: Optional[str] = None,
               seed: int = 0) -> FaultPlan:
    """Demand surge: arrival rate multiplied by ``factor`` over a window."""
    return FaultPlan(
        seed=seed,
        cluster=ClusterFaults(
            surges=[DemandSurge(at=at, duration=duration, factor=factor,
                                tenant=tenant)],
        ),
    )


def overload_plan(node_id: int = 1, at: float = 100.0,
                  duration: Optional[float] = 200.0, factor: float = 3.0,
                  seed: int = 0) -> FaultPlan:
    """The full storm: node churn + surge under every protection guard."""
    return FaultPlan(
        seed=seed,
        cluster=ClusterFaults(
            node_churn=[NodeChurn(node_id=node_id, down_at=at,
                                  duration=duration)],
            surges=[DemandSurge(at=at, duration=duration or 200.0,
                                factor=factor)],
            protection=ProtectionConfig(
                max_queue=16,
                breaker_failures=3,
                degrade_queue=8,
            ),
        ),
    )


CANNED_CHAOS = {
    "node-churn": node_churn_plan,
    "slot-flaps": slot_flap_plan,
    "poison-tenant": poison_tenant_plan,
    "surge": surge_plan,
    "overload": overload_plan,
}
