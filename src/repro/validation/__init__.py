"""Runtime invariant guard and offline event-log validation.

The engine's correctness rests on invariants no unit test can watch
continuously: the simulated clock never runs backwards, every launched task
is accounted for, the scheduler's free-core registry tracks the executor
pools through every resize and rollback (paper §4.2), MAPE-K only makes
legal hill-climb/rollback transitions, and shuffle-output accounting
survives node loss.  :class:`InvariantMonitor` checks all of these during a
run; :func:`validate_events` replays a recorded JSONL event log through the
same checkers offline (the ``repro validate`` command).

The multi-tenant service layer has its own invariants -- job conservation
across queued/running/retried/shed/aborted states, no grants to down
nodes, circuit-breaker state legality -- guarded live by
:class:`ClusterInvariantMonitor` and offline by
:func:`validate_service_report` (``repro validate`` on a saved
``repro.service/*`` report).
"""

from repro.validation.checkers import CheckContext, run_checkers
from repro.validation.cluster import (
    ClusterInvariantMonitor,
    validate_service_report,
)
from repro.validation.monitor import InvariantMonitor, validate_events
from repro.validation.report import (
    InvariantViolationError,
    ValidationReport,
    Violation,
)

__all__ = [
    "CheckContext",
    "ClusterInvariantMonitor",
    "InvariantMonitor",
    "InvariantViolationError",
    "ValidationReport",
    "Violation",
    "run_checkers",
    "validate_events",
    "validate_service_report",
]
