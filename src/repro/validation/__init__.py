"""Runtime invariant guard and offline event-log validation.

The engine's correctness rests on invariants no unit test can watch
continuously: the simulated clock never runs backwards, every launched task
is accounted for, the scheduler's free-core registry tracks the executor
pools through every resize and rollback (paper §4.2), MAPE-K only makes
legal hill-climb/rollback transitions, and shuffle-output accounting
survives node loss.  :class:`InvariantMonitor` checks all of these during a
run; :func:`validate_events` replays a recorded JSONL event log through the
same checkers offline (the ``repro validate`` command).
"""

from repro.validation.checkers import CheckContext, run_checkers
from repro.validation.monitor import InvariantMonitor, validate_events
from repro.validation.report import (
    InvariantViolationError,
    ValidationReport,
    Violation,
)

__all__ = [
    "CheckContext",
    "InvariantMonitor",
    "InvariantViolationError",
    "ValidationReport",
    "Violation",
    "run_checkers",
    "validate_events",
]
