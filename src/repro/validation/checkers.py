"""Event-stream invariant checkers.

Each checker consumes the trace-event stream (live from the tracer or
replayed from a JSONL log) and verifies one class of engine invariant using
only the event vocabulary the observability layer already emits -- which is
what lets ``repro validate`` replay the committed golden logs unchanged.

Two regimes:

* **strict** -- a fault-free run: every span balances, every stage launches
  exactly ``num_tasks`` attempts, executors idle between stages.
* **fault-tolerant** -- the log contains ``fault``/``speculation`` events:
  killed attempts legitimately leave ``task``/``io``/``process`` spans open
  (the interrupt path cannot emit their ``E``), partitions may complete
  twice (lineage recomputation), and stages may relaunch work.  Structural
  invariants (ordering, registries, shuffle accounting, queue bounds) hold
  in both regimes.

The strict/fault decision is streaming-safe: every kill or retry in the
engine is *preceded* by the fault instant that caused it, so by the time a
checker sees fault fallout the shared :class:`CheckContext` is already in
fault mode.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    COUNTER,
    END,
    INSTANT,
    TraceEvent,
)
from repro.validation.report import ValidationReport, Violation

#: Spans of these categories must close even in fault mode: stages and
#: recovery waves are driver-side and survive any executor fault short of a
#: job abort.
_ALWAYS_CLOSED_CATS = ("stage", "recovery")

#: Relative float tolerance for clock comparisons (an ``X`` event's
#: ``ts + dur`` is recomputed and may differ from the emission clock by ulps).
_EPS = 1e-9

_LEGAL_DECISIONS = ("climb", "rollback", "reached-cmax")


class CheckContext:
    """Stream-wide facts shared by every checker."""

    def __init__(self, max_failures: Optional[int] = None) -> None:
        self.cores_per_node = 0
        self.num_nodes = 0
        self.fault_mode = False
        self.job_aborted = False
        self.max_failures = max_failures

    def note(self, event: TraceEvent) -> None:
        if event.cat in ("fault", "speculation"):
            self.fault_mode = True
            if event.name == "job-aborted":
                self.job_aborted = True
        elif event.cat == "app" and event.name == "application-start":
            self.cores_per_node = int(event.args.get("cores_per_node", 0))
            self.num_nodes = int(event.args.get("num_nodes", 0))


class Checker:
    """Base: one invariant class over the event stream."""

    name = "base"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        self.report = report
        self.ctx = ctx

    def check(self, condition: bool, invariant: str, message: str,
              event: Optional[TraceEvent] = None, **context) -> bool:
        """Count one check; record a violation when ``condition`` is False."""
        self.report.checks_run += 1
        if not condition:
            self.report.add(Violation(
                invariant=invariant,
                message=message,
                ts=event.ts if event is not None else 0.0,
                seq=event.seq if event is not None else -1,
                context=context,
            ))
        return condition

    def observe(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self, strict: bool) -> None:
        """End-of-stream checks; ``strict`` is True for fault-free logs."""


class ClockChecker(Checker):
    """Monotonic simulated clock and strictly increasing sequence numbers."""

    name = "clock"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        self._last_seq: Optional[int] = None
        self._clock = 0.0

    def _tol(self) -> float:
        return _EPS * max(1.0, abs(self._clock))

    def observe(self, event: TraceEvent) -> None:
        if self._last_seq is not None:
            self.check(
                event.seq > self._last_seq, "clock.sequence",
                f"sequence number {event.seq} does not increase past "
                f"{self._last_seq}", event,
            )
        self._last_seq = event.seq
        self.check(event.ts >= 0.0, "clock.monotonic",
                   f"negative timestamp {event.ts}", event)
        if event.kind == COMPLETE:
            # X events carry the span *start* as ts, which legitimately
            # predates the current clock; the span end may not.
            self.check(event.dur >= 0.0, "clock.monotonic",
                       f"complete event has negative duration {event.dur}",
                       event)
            self.check(
                event.end_ts >= self._clock - self._tol(), "clock.monotonic",
                f"complete event ends at {event.end_ts} before the current "
                f"clock {self._clock}", event,
            )
        else:
            self.check(
                event.ts >= self._clock - self._tol(), "clock.monotonic",
                f"clock went backwards: {event.ts} after {self._clock}",
                event,
            )
            if event.ts > self._clock:
                self._clock = event.ts


class SpanChecker(Checker):
    """Span balance: every B has one E, ids are unique, parents exist."""

    name = "spans"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        self._open: Dict[int, TraceEvent] = {}
        self._closed: Set[int] = set()
        self._last: Optional[TraceEvent] = None

    def observe(self, event: TraceEvent) -> None:
        self._last = event
        if event.kind == BEGIN:
            span = event.span
            self.check(span >= 0, "spans.balance",
                       "begin event without a span id", event)
            fresh = self.check(
                span not in self._open and span not in self._closed,
                "spans.balance",
                f"span id {span} reused ({event.cat}/{event.name})", event,
                cat=event.cat, name=event.name,
            )
            if event.parent >= 0:
                self.check(
                    event.parent in self._open or event.parent in self._closed,
                    "spans.balance",
                    f"span {span} references unknown parent {event.parent}",
                    event,
                )
            if fresh:
                self._open[span] = event
        elif event.kind == END:
            opener = self._open.pop(event.span, None)
            self.check(
                opener is not None, "spans.balance",
                f"end event for span {event.span} that is "
                + ("already closed" if event.span in self._closed
                   else "not open"),
                event,
            )
            if opener is not None:
                self._closed.add(event.span)

    def finish(self, strict: bool) -> None:
        for span, opener in sorted(self._open.items()):
            must_close = opener.cat in _ALWAYS_CLOSED_CATS
            if self.ctx.job_aborted and opener.cat == "recovery":
                # An abort tears the recovery span down with the job.
                must_close = False
            self.check(
                not (strict or must_close), "spans.balance",
                f"span {span} ({opener.cat}/{opener.name}) still open at end "
                f"of log" + ("" if strict else
                             " (must close even under faults)"),
                self._last,
                opened_at=opener.ts,
            )


class _StageState:
    def __init__(self, event: TraceEvent) -> None:
        self.stage_id = int(event.args.get("stage_id", -1))
        self.name = event.name
        self.num_tasks = int(event.args.get("num_tasks", 0))
        self.launched = 0
        self.completed = 0
        self.crashed = 0
        self.completed_partitions: Set[int] = set()
        self.closed = False
        self.error: Optional[str] = None


class TaskChecker(Checker):
    """Task conservation per stage, attempt uniqueness, retry budgets."""

    name = "tasks"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        self._stages: Dict[int, _StageState] = {}
        self._stage_spans: Dict[int, int] = {}  # span -> stage_id
        self._open_tasks: Dict[int, TraceEvent] = {}  # span -> task B
        self._attempts: Set[Tuple[int, int, int]] = set()
        self._crashes: Dict[Tuple[int, int], int] = {}
        self._last: Optional[TraceEvent] = None

    def observe(self, event: TraceEvent) -> None:
        self._last = event
        if event.kind == BEGIN and event.cat == "stage":
            state = _StageState(event)
            self.check(
                state.stage_id not in self._stages, "tasks.conservation",
                f"stage id {state.stage_id} submitted twice", event,
            )
            self._stages[state.stage_id] = state
            self._stage_spans[event.span] = state.stage_id
        elif event.kind == BEGIN and event.cat == "task":
            stage_id = int(event.args.get("stage_id", -1))
            partition = int(event.args.get("partition", -1))
            attempt = int(event.args.get("attempt", 0))
            state = self._stages.get(stage_id)
            if not self.check(
                state is not None, "tasks.conservation",
                f"task launched for unknown stage {stage_id}", event,
                partition=partition,
            ):
                return
            state.launched += 1
            self._open_tasks[event.span] = event
            key = (stage_id, partition, attempt)
            self.check(
                key not in self._attempts, "tasks.conservation",
                f"duplicate attempt id {attempt} for task "
                f"{stage_id}.{partition}", event,
            )
            self._attempts.add(key)
        elif event.kind == END:
            opener = self._open_tasks.pop(event.span, None)
            if opener is not None:
                self._task_closed(opener, event)
                return
            stage_id = self._stage_spans.pop(event.span, None)
            if stage_id is not None:
                self._stage_closed(self._stages[stage_id], event)

    def _task_closed(self, opener: TraceEvent, event: TraceEvent) -> None:
        stage_id = int(opener.args.get("stage_id", -1))
        partition = int(opener.args.get("partition", -1))
        state = self._stages.get(stage_id)
        if state is None:
            return
        if event.args.get("crashed"):
            state.crashed += 1
            key = (stage_id, partition)
            crashes = self._crashes.get(key, 0) + 1
            self._crashes[key] = crashes
            limit = self.ctx.max_failures
            if limit is not None:
                self.check(
                    crashes <= limit, "tasks.retries",
                    f"task {stage_id}.{partition} crashed {crashes} times, "
                    f"beyond spark.task.maxFailures={limit}", event,
                )
            return
        state.completed += 1
        duplicate = partition in state.completed_partitions
        self.check(
            not duplicate or self.ctx.fault_mode, "tasks.conservation",
            f"partition {stage_id}.{partition} completed twice in a "
            f"fault-free run", event,
        )
        state.completed_partitions.add(partition)

    def _stage_closed(self, state: _StageState, event: TraceEvent) -> None:
        state.closed = True
        state.error = event.args.get("error")
        if state.error is not None:
            return  # an aborted stage is allowed to be incomplete
        expected = set(range(state.num_tasks))
        missing = sorted(expected - state.completed_partitions)
        self.check(
            not missing, "tasks.conservation",
            f"stage {state.stage_id} ({state.name}) closed with "
            f"{len(missing)}/{state.num_tasks} partitions never completed: "
            f"{missing[:8]}", event,
        )

    def finish(self, strict: bool) -> None:
        limit = self.ctx.max_failures
        if limit is not None:
            for (stage_id, partition), crashes in sorted(self._crashes.items()):
                if crashes >= limit:
                    self.check(
                        self.ctx.job_aborted, "tasks.retries",
                        f"task {stage_id}.{partition} exhausted its "
                        f"{limit}-failure budget but the job never aborted",
                        self._last,
                    )
        for stage_id, state in sorted(self._stages.items()):
            leaked = state.launched - state.completed - state.crashed
            self.check(
                leaked >= 0, "tasks.conservation",
                f"stage {stage_id}: more completions than launches "
                f"(launched={state.launched} completed={state.completed} "
                f"crashed={state.crashed})", self._last,
            )
            if strict:
                self.check(
                    leaked == 0, "tasks.conservation",
                    f"stage {stage_id}: {leaked} launched attempt(s) neither "
                    f"completed nor crashed in a fault-free run", self._last,
                )
                self.check(
                    state.launched == state.num_tasks, "tasks.conservation",
                    f"stage {stage_id} launched {state.launched} attempts "
                    f"for {state.num_tasks} partitions in a fault-free run "
                    f"(retries or speculation without a fault event)",
                    self._last,
                )


class RegistryChecker(Checker):
    """The scheduler/executor running-task registry, seen through events.

    The driver-side registry itself is checked live (hook-based, exact);
    offline the event stream still pins down its observable consequences:
    per-executor concurrency never exceeds the core bank, executors idle at
    every stage boundary of a fault-free run, and every pool size stays
    within ``[1, cores]``.
    """

    name = "registry"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        self._running: Dict[int, int] = {}
        self._task_executor: Dict[int, int] = {}  # span -> executor_id

    def observe(self, event: TraceEvent) -> None:
        if event.kind == BEGIN and event.cat == "task":
            executor_id = int(event.args.get("executor_id", -1))
            running = self._running.get(executor_id, 0) + 1
            self._running[executor_id] = running
            self._task_executor[event.span] = executor_id
            cores = self.ctx.cores_per_node
            if cores:
                self.check(
                    running <= cores, "scheduler.registry",
                    f"executor {executor_id} runs {running} concurrent tasks "
                    f"with only {cores} cores", event,
                )
        elif event.kind == END:
            executor_id = self._task_executor.pop(event.span, None)
            if executor_id is not None:
                self._running[executor_id] -= 1
        elif event.kind == BEGIN and event.cat == "stage":
            if not self.ctx.fault_mode:
                for executor_id, running in sorted(self._running.items()):
                    self.check(
                        running == 0, "scheduler.registry",
                        f"stage {event.args.get('stage_id')} started while "
                        f"executor {executor_id} still runs {running} "
                        f"task(s)", event,
                    )
        elif event.kind == INSTANT and event.cat == "pool":
            size = int(event.args.get("size", 0))
            self._check_pool_size(size, event)
        elif event.kind == INSTANT and event.cat == "scheduler" \
                and event.name == "pool-resized":
            self._check_pool_size(int(event.args.get("pool_size", 0)), event)

    def _check_pool_size(self, size: int, event: TraceEvent) -> None:
        cores = self.ctx.cores_per_node
        self.check(
            size >= 1 and (not cores or size <= cores), "scheduler.registry",
            f"pool size {size} outside [1, {cores or '?'}] on executor "
            f"{event.args.get('executor_id')}", event,
        )

    def finish(self, strict: bool) -> None:
        if strict:
            for executor_id, running in sorted(self._running.items()):
                self.check(
                    running == 0, "scheduler.registry",
                    f"executor {executor_id} still runs {running} task(s) at "
                    f"end of a fault-free log", None,
                )


class MapekChecker(Checker):
    """MAPE-K pool bounds and legal hill-climb/rollback transitions."""

    name = "mapek"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        #: (executor, stage) -> (threads, decision) of the last interval.
        self._last_interval: Dict[Tuple[int, int], Tuple[int, str]] = {}
        self._settled: Set[Tuple[int, int]] = set()

    @staticmethod
    def _key(event: TraceEvent) -> Tuple[int, int]:
        return (int(event.args.get("executor_id", -1)),
                int(event.args.get("stage_id", -1)))

    def observe(self, event: TraceEvent) -> None:
        if event.cat != "mapek":
            return
        if event.kind == INSTANT and event.name == "analyze":
            key = self._key(event)
            threads = int(event.args.get("threads", 0))
            decision = event.args.get("decision", "")
            cores = self.ctx.cores_per_node
            self.check(
                threads >= 1 and (not cores or threads <= cores),
                "mapek.bounds",
                f"analyzer chose {threads} threads outside [1, "
                f"{cores or '?'}] for executor {key[0]} stage {key[1]}",
                event,
            )
            self.check(
                decision in _LEGAL_DECISIONS, "mapek.transition",
                f"unknown analyzer decision {decision!r}", event,
            )
            self.check(
                key not in self._settled, "mapek.transition",
                f"executor {key[0]} stage {key[1]} kept adapting after "
                f"settling", event,
            )
            if event.args.get("settled"):
                self._settled.add(key)
        elif event.kind == COMPLETE and event.name == "interval":
            key = self._key(event)
            threads = int(event.args.get("threads", 0))
            decision = event.args.get("decision", "")
            previous = self._last_interval.get(key)
            if previous is not None:
                prev_threads, prev_decision = previous
                if prev_decision == "climb":
                    self.check(
                        prev_threads < threads <= 2 * prev_threads,
                        "mapek.transition",
                        f"illegal hill-climb step {prev_threads} -> "
                        f"{threads} threads on executor {key[0]} stage "
                        f"{key[1]} (climb must double, capped at cmax)",
                        event,
                    )
                else:
                    self.check(
                        False, "mapek.transition",
                        f"interval at {threads} threads after a "
                        f"{prev_decision!r} decision settled executor "
                        f"{key[0]} stage {key[1]}", event,
                    )
            self._last_interval[key] = (threads, decision)


class ShuffleChecker(Checker):
    """Shuffle-output accounting vs the MapOutputTracker instants."""

    name = "shuffle"

    def __init__(self, report: ValidationReport, ctx: CheckContext) -> None:
        super().__init__(report, ctx)
        #: shuffle_id -> {map_id: node_id} currently registered.
        self._registry: Dict[int, Dict[int, int]] = {}
        self._expected: Dict[int, int] = {}

    def observe(self, event: TraceEvent) -> None:
        if event.kind != INSTANT:
            return
        if event.cat == "shuffle" and event.name == "map-output":
            shuffle_id = int(event.args.get("shuffle_id", -1))
            map_id = int(event.args.get("map_id", -1))
            node_id = int(event.args.get("node_id", -1))
            registered = int(event.args.get("registered", -1))
            expected = int(event.args.get("expected", 0))
            outputs = self._registry.setdefault(shuffle_id, {})
            self._expected[shuffle_id] = expected
            self.check(
                map_id not in outputs, "shuffle.accounting",
                f"map output {map_id} of shuffle {shuffle_id} registered "
                f"twice without an intervening loss", event,
            )
            outputs[map_id] = node_id
            self.check(
                registered == len(outputs), "shuffle.accounting",
                f"tracker reports {registered} outputs for shuffle "
                f"{shuffle_id}, event stream has {len(outputs)}", event,
            )
            self.check(
                len(outputs) <= expected, "shuffle.accounting",
                f"shuffle {shuffle_id} holds {len(outputs)} outputs for "
                f"{expected} map partitions", event,
            )
        elif event.cat == "fault" and event.name == "shuffle-outputs-lost":
            shuffle_id = int(event.args.get("shuffle_id", -1))
            node_id = int(event.args.get("node_id", -1))
            lost_maps = int(event.args.get("lost_maps", -1))
            outputs = self._registry.get(shuffle_id, {})
            removed = [m for m, n in outputs.items() if n == node_id]
            for map_id in removed:
                del outputs[map_id]
            self.check(
                len(removed) == lost_maps, "shuffle.accounting",
                f"node {node_id} loss discarded {lost_maps} outputs of "
                f"shuffle {shuffle_id}, event stream tracked {len(removed)} "
                f"on that node", event,
            )


class QueueChecker(Checker):
    """Device queue depths and NIC transfer counters stay sane."""

    name = "queues"

    def observe(self, event: TraceEvent) -> None:
        if event.kind != COUNTER:
            return
        value = event.args.get("value", 0)
        finite = isinstance(value, (int, float)) and math.isfinite(value)
        if event.cat == "device":
            self.check(
                finite and value >= 1, "queues.nonnegative",
                f"device {event.name} queue depth {value!r} below 1 (the "
                f"sample includes the submitting request)", event,
            )
            efficiency = event.args.get("efficiency", 1.0)
            self.check(
                0.0 < efficiency <= 1.0, "queues.nonnegative",
                f"device {event.name} efficiency {efficiency!r} outside "
                f"(0, 1]", event,
            )
        elif event.cat == "network":
            self.check(
                finite and value >= 0, "queues.nonnegative",
                f"NIC {event.name} transfer of {value!r} bytes", event,
            )
            flows = event.args.get("active_flows", 1)
            self.check(
                flows >= 1, "queues.nonnegative",
                f"NIC {event.name} sampled {flows!r} active flows (the "
                f"sample includes the new flow)", event,
            )


#: Construction order == observation order; all checkers are independent.
ALL_CHECKERS = (
    ClockChecker,
    SpanChecker,
    TaskChecker,
    RegistryChecker,
    MapekChecker,
    ShuffleChecker,
    QueueChecker,
)


def run_checkers(events, max_failures: Optional[int] = None,
                 strict: Optional[bool] = None) -> ValidationReport:
    """Replay ``events`` through every checker; returns the full report.

    ``strict=None`` decides from the stream itself: a log with no
    ``fault``/``speculation`` events is held to fault-free invariants.
    """
    report = ValidationReport()
    ctx = CheckContext(max_failures=max_failures)
    checkers: List[Checker] = [cls(report, ctx) for cls in ALL_CHECKERS]
    for event in events:
        ctx.note(event)
        report.events_seen += 1
        for checker in checkers:
            checker.observe(event)
    final_strict = strict if strict is not None else not ctx.fault_mode
    report.strict = final_strict
    for checker in checkers:
        checker.finish(final_strict)
    return report
