"""Cluster-level invariant checkers for the multi-tenant service layer.

The engine-side monitor (:mod:`repro.validation.monitor`) watches one
job's task timeline; this module watches the layer above it -- the
:class:`~repro.cluster.scheduler.ClusterScheduler` event loop and the
``repro.service/1`` report it produces, under cluster-scope chaos
(``repro.faults/2``).  Three families of invariants:

* **Job conservation** -- every submitted job ends in exactly one terminal
  state (completed, shed, or aborted); nothing is lost or double-counted
  across queue / running / retry-backoff states.
* **Grant legality** -- slots are never granted on a down or flapped node,
  nor on a node another job already holds.
* **Breaker legality** -- circuit breakers only make the transitions the
  state machine allows (closed -> open -> half-open -> {closed, open}).

:class:`ClusterInvariantMonitor` checks the first two live via scheduler
hooks (``on_grant`` / ``on_breaker`` / ``on_final``);
:func:`validate_service_report` replays all three offline from a saved
report, which is what ``repro validate`` does when handed a
``repro.service/*`` document instead of an event log.  Like the engine
monitor, everything here is read-only: attaching a monitor never perturbs
the schedule, so a monitored run stays byte-identical.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.chaos import BREAKER_STATES, LEGAL_BREAKER_TRANSITIONS
from repro.validation.report import (
    InvariantViolationError,
    ValidationReport,
    Violation,
)

_MODES = ("raise", "log", "collect")


class ClusterInvariantMonitor:
    """Live invariant guard for one :class:`ClusterScheduler` run.

    ``mode`` picks what a violation does: ``"raise"`` (default) aborts the
    run with :class:`InvariantViolationError` at the first broken
    invariant, ``"log"`` prints each to stderr and keeps going,
    ``"collect"`` just accumulates them on :attr:`report`.
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in _MODES:
            raise ValueError(
                f"unknown monitor mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.report = ValidationReport(listener=self._on_violation)
        #: tenant -> current breaker state, as observed via transitions.
        self._breaker_state: Dict[str, str] = {}

    # -- violation routing -------------------------------------------------

    def _on_violation(self, violation: Violation) -> None:
        if self.mode == "raise":
            raise InvariantViolationError(violation)
        if self.mode == "log":
            print(f"invariant violation: {violation.render()}",
                  file=sys.stderr)

    def _violation(self, invariant: str, message: str, ts: float,
                   **context: Any) -> None:
        self.report.add(Violation(invariant=invariant, message=message,
                                  ts=ts, context=context))

    # -- scheduler hooks ---------------------------------------------------

    def on_grant(self, now: float, job: Any, node_ids: Sequence[int],
                 nodes: Sequence[Any]) -> None:
        """A grant is about to start ``job`` on ``node_ids``."""
        self.report.checks_run += 1
        for node_id in node_ids:
            node = nodes[node_id]
            if node.down > 0:
                self._violation(
                    "cluster.grant", f"granted down node {node_id} to "
                    f"{job.job_id}", now, job=job.job_id, node=node_id)
            if node.flaps > 0:
                self._violation(
                    "cluster.grant", f"granted flapped node {node_id} to "
                    f"{job.job_id}", now, job=job.job_id, node=node_id)
            if node.job is not None:
                self._violation(
                    "cluster.grant", f"granted busy node {node_id} to "
                    f"{job.job_id} (held by {node.job})", now,
                    job=job.job_id, node=node_id, holder=node.job)

    def on_breaker(self, now: float, tenant: str, old: str,
                   new: str) -> None:
        """A circuit breaker moved ``old`` -> ``new``."""
        self.report.checks_run += 1
        if new not in LEGAL_BREAKER_TRANSITIONS.get(old, ()):
            self._violation(
                "cluster.breaker",
                f"illegal breaker transition {old} -> {new} for {tenant}",
                now, tenant=tenant)
        self._breaker_state[tenant] = new

    def on_final(self, now: float, submitted: int, completed: int,
                 rejected: int, aborted: int) -> None:
        """The loop drained; check terminal job conservation."""
        self.report.checks_run += 1
        if submitted != completed + rejected + aborted:
            self._violation(
                "cluster.conservation",
                f"{submitted} submitted != {completed} completed + "
                f"{rejected} shed + {aborted} aborted", now,
                submitted=submitted, completed=completed,
                rejected=rejected, aborted=aborted)


def validate_service_report(doc: Dict[str, Any]) -> ValidationReport:
    """Offline replay: check cluster invariants from a saved service report.

    Accepts any ``repro.service/*`` document (the resilience section is
    optional -- a chaos-free report is held to the same conservation
    rules with zero aborts).  Returns a :class:`ValidationReport`; use
    :meth:`~repro.validation.report.ValidationReport.ok` to gate on it.
    """
    report = ValidationReport()
    schema = str(doc.get("schema", ""))
    if not schema.startswith("repro.service/"):
        report.add(Violation(
            invariant="cluster.schema",
            message=f"not a service report (schema {schema!r})"))
        return report

    totals = doc.get("totals", {})
    resilience = doc.get("resilience") or {}
    submitted = int(totals.get("submitted", 0))
    completed = int(totals.get("completed", 0))
    rejected = int(totals.get("rejected", 0))
    aborted = int(resilience.get("aborted", 0))
    report.checks_run += 1
    if submitted != completed + rejected + aborted:
        report.add(Violation(
            invariant="cluster.conservation",
            message=(f"{submitted} submitted != {completed} completed + "
                     f"{rejected} shed + {aborted} aborted"),
            context={"submitted": submitted, "completed": completed,
                     "rejected": rejected, "aborted": aborted}))
    shed = resilience.get("shed")
    if shed is not None:
        report.checks_run += 1
        if sum(shed.values()) != rejected:
            report.add(Violation(
                invariant="cluster.conservation",
                message=(f"shed reasons sum to {sum(shed.values())} but "
                         f"{rejected} jobs were rejected"),
                context={"shed": dict(shed), "rejected": rejected}))

    # Per-job terminal-state legality: exactly one of done / shed / aborted.
    max_end = 0.0
    for row in doc.get("jobs", []):
        report.checks_run += 1
        done = row.get("end") is not None
        was_shed = bool(row.get("rejected"))
        was_aborted = bool(row.get("aborted"))
        if done + was_shed + was_aborted != 1:
            report.add(Violation(
                invariant="cluster.terminal",
                message=(f"job {row.get('job_id')} has "
                         f"{done + was_shed + was_aborted} terminal states "
                         f"(completed={done}, shed={was_shed}, "
                         f"aborted={was_aborted})"),
                context={"job": row.get("job_id")}))
        if done:
            max_end = max(max_end, float(row["end"]))
    report.checks_run += 1
    makespan = float(doc.get("makespan_s", 0.0))
    if makespan + 1e-9 < max_end:
        report.add(Violation(
            invariant="cluster.makespan",
            message=(f"makespan {makespan} precedes the last completion "
                     f"at {max_end}"),
            context={"makespan": makespan, "last_end": max_end}))

    # Availability in [0, 1].
    for tenant, value in sorted(
            (resilience.get("availability") or {}).items()):
        report.checks_run += 1
        if not 0.0 <= float(value) <= 1.0:
            report.add(Violation(
                invariant="cluster.availability",
                message=f"availability for {tenant} is {value}, "
                        f"outside [0, 1]",
                context={"tenant": tenant, "availability": value}))

    # Breaker transition legality, replayed per tenant in time order.
    for tenant, info in sorted((resilience.get("breakers") or {}).items()):
        state = "closed"
        for at, nxt in info.get("transitions", []):
            report.checks_run += 1
            if nxt not in BREAKER_STATES:
                report.add(Violation(
                    invariant="cluster.breaker",
                    message=f"unknown breaker state {nxt!r} for {tenant}",
                    ts=float(at), context={"tenant": tenant}))
                continue
            if nxt not in LEGAL_BREAKER_TRANSITIONS.get(state, ()):
                report.add(Violation(
                    invariant="cluster.breaker",
                    message=(f"illegal breaker transition {state} -> {nxt} "
                             f"for {tenant}"),
                    ts=float(at), context={"tenant": tenant}))
            state = nxt
        report.checks_run += 1
        if info.get("state") != state:
            report.add(Violation(
                invariant="cluster.breaker",
                message=(f"breaker for {tenant} reports state "
                         f"{info.get('state')!r} but its transitions end at "
                         f"{state!r}"),
                context={"tenant": tenant}))

    report.events_seen = len(doc.get("jobs", []))
    return report
