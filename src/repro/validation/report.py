"""Structured invariant-violation reports.

A :class:`Violation` pins one broken invariant to a point on the simulated
timeline with enough context to act on it (which executor, which stage,
the counts that disagreed).  A :class:`ValidationReport` accumulates them
over a run or an offline replay, plus how many individual checks passed,
so "clean" means "checked and found nothing", not "nothing looked".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with where and why."""

    invariant: str  #: dotted id, e.g. ``scheduler.registry``
    message: str  #: human-actionable one-liner
    ts: float = 0.0  #: simulated time at detection
    seq: int = -1  #: event sequence number (offline replays; -1 live)
    context: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        where = f"t={self.ts:.3f}"
        if self.seq >= 0:
            where += f" seq={self.seq}"
        extra = ""
        if self.context:
            pairs = " ".join(
                f"{key}={value}" for key, value in sorted(self.context.items())
            )
            extra = f" [{pairs}]"
        return f"{self.invariant} @ {where}: {self.message}{extra}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "ts": self.ts,
            "seq": self.seq,
            "context": dict(self.context),
        }


class InvariantViolationError(RuntimeError):
    """Raised by a monitor in ``raise`` mode at the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.render())
        self.violation = violation


@dataclass
class ValidationReport:
    """Everything one validation pass found (and how hard it looked)."""

    violations: List[Violation] = field(default_factory=list)
    events_seen: int = 0
    checks_run: int = 0
    strict: bool = True
    #: Called with each violation as it is added (the monitor's raise/log
    #: modes hook in here); ``None`` just collects.
    listener: Optional[Callable[[Violation], None]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.listener is not None:
            self.listener(violation)

    def summary(self) -> str:
        mode = "strict" if self.strict else "fault-tolerant"
        head = (
            f"{self.events_seen} events, {self.checks_run} checks ({mode}), "
            f"{len(self.violations)} violation(s)"
        )
        if self.ok:
            return f"OK: {head}"
        lines = [f"FAIL: {head}"]
        lines.extend(f"  {violation.render()}" for violation in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "events_seen": self.events_seen,
            "checks_run": self.checks_run,
            "strict": self.strict,
            "violations": [v.to_dict() for v in self.violations],
        }
