"""The runtime invariant guard.

:class:`InvariantMonitor` watches a live application from two directions at
once:

* as a trace sink it replays every emitted event through the same checkers
  ``repro validate`` uses offline (clock order, span balance, task
  conservation, shuffle accounting, queue bounds);
* through engine hooks it inspects driver state the event stream cannot
  express exactly -- the scheduler's free-core registry versus the real
  executor pools at every launch, resize and stage boundary (the paper's
  §4.2 protocol-consistency claim), and each MAPE-K decision against the
  legal hill-climb/rollback transition relation.

The monitor is strictly read-only: it emits no events, schedules nothing on
the simulated timeline, and a fault-free run with the monitor attached
produces a byte-identical event log.  ``mode`` picks what a violation does:
``"raise"`` (default) aborts the run with :class:`InvariantViolationError`
at the first broken invariant, ``"log"`` prints each to stderr and keeps
going, ``"collect"`` just accumulates them on :attr:`report`.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional

from repro.observability.events import TraceEvent
from repro.observability.sinks import TraceSink
from repro.validation.checkers import ALL_CHECKERS, CheckContext, run_checkers
from repro.validation.report import (
    InvariantViolationError,
    ValidationReport,
    Violation,
)

_MODES = ("raise", "log", "collect")


def validate_events(events: Iterable[TraceEvent],
                    max_failures: Optional[int] = None,
                    strict: Optional[bool] = None) -> ValidationReport:
    """Offline replay: run every checker over a recorded event stream.

    With ``strict=None`` the regime is inferred from the log itself -- a
    stream with no fault/speculation events is held to fault-free
    invariants.  ``max_failures`` enables the retry-budget check
    (``spark.task.maxFailures``).
    """
    return run_checkers(events, max_failures=max_failures, strict=strict)


class InvariantMonitor(TraceSink):
    """Continuously checks engine invariants during a run."""

    def __init__(self, mode: str = "raise",
                 max_failures: Optional[int] = None) -> None:
        if mode not in _MODES:
            raise ValueError(
                f"unknown monitor mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.ctx = None
        self.report = ValidationReport(listener=self._on_violation)
        self._check_ctx = CheckContext(max_failures=max_failures)
        self._checkers = [cls(self.report, self._check_ctx)
                          for cls in ALL_CHECKERS]
        self._finished = False

    # -- violation routing --------------------------------------------------------

    def _on_violation(self, violation: Violation) -> None:
        if self.mode == "raise":
            raise InvariantViolationError(violation)
        if self.mode == "log":
            print(f"invariant violation: {violation.render()}",
                  file=sys.stderr)

    def _violation(self, invariant: str, message: str, **context) -> None:
        ts = self.ctx.sim.now if self.ctx is not None else 0.0
        self.report.add(
            Violation(invariant=invariant, message=message, ts=ts,
                      context=context)
        )

    def _check(self, condition: bool, invariant: str, message: str,
               **context) -> None:
        self.report.checks_run += 1
        if not condition:
            self._violation(invariant, message, **context)

    # -- wiring -------------------------------------------------------------------

    def bind(self, ctx) -> "InvariantMonitor":
        """Attach to a :class:`SparkContext` before its first job.

        Installs the simulator's monotonic-clock guard, registers the
        monitor as a trace sink (when tracing is on), and announces itself
        as ``ctx.invariants`` so the scheduler/executor/MAPE-K hook sites
        start reporting.
        """
        self.ctx = ctx
        ctx.invariants = self
        if self._check_ctx.max_failures is None:
            self._check_ctx.max_failures = int(
                ctx.conf.get("spark.task.maxFailures")
            )
        if ctx.cluster.nodes:
            self._check_ctx.cores_per_node = ctx.cluster.nodes[0].cores
            self._check_ctx.num_nodes = ctx.cluster.num_nodes
        ctx.sim.monotonic_guard = True
        if ctx.tracer.enabled:
            ctx.tracer.add_sink(self)
        return self

    # -- trace-sink side ----------------------------------------------------------

    def write(self, event: TraceEvent) -> None:
        self._check_ctx.note(event)
        self.report.events_seen += 1
        for checker in self._checkers:
            checker.observe(event)

    def finish(self) -> ValidationReport:
        """End-of-run checks (span balance, leaked attempts); idempotent."""
        if not self._finished:
            self._finished = True
            strict = not self._check_ctx.fault_mode
            self.report.strict = strict
            for checker in self._checkers:
                checker.finish(strict)
        return self.report

    def close(self) -> None:  # tracer shutdown
        self.finish()

    # -- scheduler hooks ----------------------------------------------------------

    def on_task_launched(self, scheduler, executor_id: int) -> None:
        """After ``_assigned[executor_id] += 1`` for any launch."""
        assigned = scheduler._assigned[executor_id]
        view = scheduler._pool_view[executor_id]
        self._check(
            0 < assigned <= view, "scheduler.registry",
            f"launch drove executor {executor_id} to {assigned} assigned "
            f"tasks against a pool view of {view}",
            executor_id=executor_id, assigned=assigned, pool_view=view,
        )

    def on_pool_view_update(self, scheduler, executor_id: int) -> None:
        """After the driver applies a ``PoolResized`` message."""
        view = scheduler._pool_view[executor_id]
        cores = self._check_ctx.cores_per_node
        self._check(
            1 <= view and (not cores or view <= cores), "scheduler.registry",
            f"pool view for executor {executor_id} updated to {view}, "
            f"outside [1, {cores or '?'}]",
            executor_id=executor_id, pool_view=view,
        )

    def on_stage_quiescent(self, scheduler, run) -> None:
        """At ``_finish_stage``: the registry must agree with reality.

        With no work in flight and no messages pending, the driver's
        free-core registry (``pool_view - assigned``) must exactly equal
        each live executor's ``pool_size - running`` -- the §4.2 claim that
        resizes and rollbacks never desynchronise the protocol.
        """
        stage_id = run.stage.stage_id
        completed = len(run.completed_partitions)
        self._check(
            completed == run.stage.num_tasks, "tasks.conservation",
            f"stage {stage_id} finishing with {completed}/"
            f"{run.stage.num_tasks} partitions complete",
            stage_id=stage_id,
        )
        for executor in self.ctx.executors:
            if not executor.alive:
                continue
            executor_id = executor.executor_id
            assigned = scheduler._assigned.get(executor_id, 0)
            view = scheduler._pool_view.get(executor_id, 0)
            self._check(
                assigned == 0, "scheduler.registry",
                f"stage {stage_id} finishing with {assigned} tasks still "
                f"assigned to executor {executor_id}",
                executor_id=executor_id, stage_id=stage_id,
            )
            self._check(
                executor.running == 0, "scheduler.registry",
                f"stage {stage_id} finishing while executor {executor_id} "
                f"still runs {executor.running} task(s)",
                executor_id=executor_id, stage_id=stage_id,
            )
            free_view = view - assigned
            free_real = executor.pool_size - executor.running
            self._check(
                view == executor.pool_size and free_view == free_real,
                "scheduler.registry",
                f"free-core registry diverged on executor {executor_id} at "
                f"stage {stage_id} quiescence: driver sees {free_view} free "
                f"of {view}, executor has {free_real} free of "
                f"{executor.pool_size}",
                executor_id=executor_id, stage_id=stage_id,
                pool_view=view, pool_size=executor.pool_size,
            )

    # -- executor hooks -----------------------------------------------------------

    def on_pool_resize(self, executor, size: int, reason: str) -> None:
        """After a pool-size change is applied on the executor."""
        cores = executor.node.cores
        self._check(
            1 <= size <= cores, "mapek.bounds",
            f"executor {executor.executor_id} pool resized to {size}, "
            f"outside [1, {cores}] ({reason})",
            executor_id=executor.executor_id, size=size, reason=reason,
        )

    def on_executor_cleanup(self, executor) -> None:
        """After an attempt's bookkeeping is retired."""
        self._check(
            executor.running >= 0, "scheduler.registry",
            f"executor {executor.executor_id} running-task count went "
            f"negative ({executor.running})",
            executor_id=executor.executor_id, running=executor.running,
        )

    # -- MAPE-K hook --------------------------------------------------------------

    def on_mapek_decision(self, loop, decision) -> None:
        """Right after the analyzer's verdict, before planning/effecting.

        ``kb.current_threads`` still holds the interval's thread count;
        ``kb.history[-1]`` is the interval just recorded and
        ``kb.history[-2]`` the rollback target.
        """
        kb = loop.knowledge
        executor_id = loop.executor.executor_id
        stage_id = loop.stage.stage_id
        self._check(
            kb.cmin <= decision.threads <= kb.cmax, "mapek.bounds",
            f"MAPE-K chose {decision.threads} threads outside "
            f"[{kb.cmin}, {kb.cmax}] on executor {executor_id} stage "
            f"{stage_id}",
            executor_id=executor_id, stage_id=stage_id,
            threads=decision.threads,
        )
        current = kb.current_threads
        if decision.reason == "climb":
            legal = (decision.threads == min(current * 2, kb.cmax)
                     and not decision.settled)
            expected = f"min({current} * 2, {kb.cmax})"
        elif decision.reason == "rollback":
            target = kb.history[-2].threads if len(kb.history) >= 2 else None
            legal = decision.settled and decision.threads == target
            expected = f"previous interval's {target} threads, settled"
        elif decision.reason == "reached-cmax":
            legal = decision.settled and decision.threads == kb.cmax
            expected = f"cmax={kb.cmax}, settled"
        else:
            legal = False
            expected = "a known decision kind"
        self._check(
            legal, "mapek.transition",
            f"illegal MAPE-K transition on executor {executor_id} stage "
            f"{stage_id}: {decision.reason!r} from {current} threads chose "
            f"{decision.threads} (settled={decision.settled}), expected "
            f"{expected}",
            executor_id=executor_id, stage_id=stage_id,
            decision=decision.reason, threads=decision.threads,
        )
