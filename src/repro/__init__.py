"""Reproduction of "Self-adaptive Executors for Big Data Processing".

Sobhan Omranian Khorasani, Jan S. Rellermeyer, Dick Epema -- Middleware 2019,
DOI 10.1145/3361525.3361545.

The package rebuilds the paper's entire system on a deterministic
discrete-event simulator:

* :mod:`repro.simulation` -- event kernel and fair-share resources
* :mod:`repro.storage` / :mod:`repro.network` / :mod:`repro.cluster` -- the
  hardware substrate (HDD/SSD contention, NICs, DAS-5-shaped nodes, DFS)
* :mod:`repro.engine` -- the Spark-like engine (RDDs, DAG/task schedulers,
  resizable executors, shuffle, Table 1's configuration surface)
* :mod:`repro.monitoring` -- mpstat/iostat/strace analogues
* :mod:`repro.adaptive` -- the contribution: MAPE-K self-adaptive executors
  plus the static solution and the BestFit oracle
* :mod:`repro.workloads` -- the HiBench-style evaluation workloads
* :mod:`repro.harness` -- per-figure experiment protocols

Start with ``examples/quickstart.py`` or ``python -m repro compare terasort``.
"""

__version__ = "1.0.0"
