"""Central metrics registry: counters, gauges, histograms.

Instrumentation sites update metrics live (task completions, pool sizes,
MAPE-K intervals); :func:`collect_run_metrics` folds in end-of-run gauges
read from the simulated hardware (device bytes and busy time, NIC volume
and utilisation) and returns a deterministic snapshot -- keys sorted, plain
JSON-serialisable values -- suitable for the ``--json`` CLI mode and the
trailing ``metrics`` event of a trace.
"""

from __future__ import annotations

import math
from typing import Any, Dict


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary: count / sum / min / max / mean.

    Non-finite observations (ζ = inf on a zero-throughput interval) are
    counted separately instead of poisoning the sum.
    """

    __slots__ = ("count", "total", "min", "max", "non_finite")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.non_finite = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            self.non_finite += 1
            return
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "non_finite": self.non_finite,
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshot in sorted order."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


def collect_run_metrics(ctx) -> Dict[str, Dict[str, Any]]:
    """End-of-run hardware gauges + the live registry, as one snapshot.

    ``ctx`` is a :class:`~repro.engine.context.SparkContext`; typed loosely
    to keep this package free of engine imports.
    """
    metrics = ctx.metrics
    runtime = ctx.recorder.total_runtime
    for node in ctx.cluster.nodes:
        node.disk.sync()
        node.cpu.sync()
        prefix = f"node.{node.node_id}"
        metrics.gauge(f"{prefix}.disk.bytes_read").set(node.disk.bytes_read)
        metrics.gauge(f"{prefix}.disk.bytes_written").set(
            node.disk.bytes_written
        )
        metrics.gauge(f"{prefix}.disk.busy_seconds").set(
            node.disk.stats.busy_time
        )
        metrics.gauge(f"{prefix}.cpu.core_seconds").set(
            node.cpu.stats.occupancy_integral
        )
    fabric = ctx.cluster.fabric
    total_nic = 0.0
    for node_id in fabric.node_ids:
        for direction, link in (("out", fabric.egress(node_id)),
                                ("in", fabric.ingress(node_id))):
            name = f"node.{node_id}.nic.{direction}"
            metrics.gauge(f"{name}.bytes").set(link.bytes_transferred)
            utilisation = (
                link.bytes_transferred / (link.capacity * runtime)
                if runtime > 0 else 0.0
            )
            metrics.gauge(f"{name}.utilization").set(utilisation)
            total_nic += link.bytes_transferred
    metrics.gauge("network.bytes_total").set(total_nic)
    metrics.gauge("scheduler.control_messages").set(
        float(ctx.scheduler.channel.messages_sent)
    )
    metrics.gauge("run.simulated_seconds").set(runtime)
    metrics.gauge("run.stages").set(float(len(ctx.recorder.stages)))
    return metrics.snapshot()
