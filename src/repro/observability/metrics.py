"""Central metrics registry: counters, gauges, histograms.

Instrumentation sites update metrics live (task completions, pool sizes,
MAPE-K intervals); :func:`collect_run_metrics` folds in end-of-run gauges
read from the simulated hardware (device bytes and busy time, NIC volume
and utilisation) and returns a deterministic snapshot -- keys sorted, plain
JSON-serialisable values -- suitable for the ``--json`` CLI mode and the
trailing ``metrics`` event of a trace.

Naming: this registry is the single naming authority for run metrics.  The
raw per-entity records (tasks, stages, intervals, samples) live in
:mod:`repro.engine.metrics`; everything aggregated under a *name* -- whether
by live instrumentation, :func:`collect_run_metrics`, or the demand profiler
-- uses the helpers below (:func:`node_metric`, :data:`METRIC_UNITS`) so
``repro profile`` and the trailing metrics event agree on names and units.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple


def node_metric(node_id: int, name: str) -> str:
    """Canonical per-node metric name: ``node.<id>.<name>``."""
    return f"node.{node_id}.{name}"


def nic_metric(node_id: int, direction: str, name: str) -> str:
    """Canonical NIC metric name: ``node.<id>.nic.<in|out>.<name>``."""
    return f"node.{node_id}.nic.{direction}.{name}"


def tenant_metric(tenant: str, name: str) -> str:
    """Canonical per-tenant service metric name: ``service.tenant.<t>.<name>``."""
    return f"service.tenant.{tenant}.{name}"


#: Units for the canonical metric families (documented in OBSERVABILITY.md;
#: shared vocabulary between ``collect_run_metrics`` and the profiler).
METRIC_UNITS: Dict[str, str] = {
    "disk.bytes_read": "bytes",
    "disk.bytes_written": "bytes",
    "disk.busy_seconds": "seconds",
    "cpu.core_seconds": "core-seconds",
    "nic.bytes": "bytes",
    "nic.utilization": "fraction",
    "tasks.duration": "seconds",
    "tasks.queue_delay": "seconds",
    "tasks.io_wait": "seconds",
    "stages.runtime": "seconds",
    "run.simulated_seconds": "seconds",
    "service.job_latency": "seconds",
    "service.queue_delay": "seconds",
    "service.jobs.submitted": "jobs",
    "service.jobs.completed": "jobs",
    "service.jobs.rejected": "jobs",
    "service.jobs.preempted": "jobs",
    "service.jobs.retried": "jobs",
    "service.jobs.shed": "jobs",
    "service.jobs.aborted": "jobs",
    "service.slo_violations": "violations",
    "service.breaker.opens": "transitions",
    "service.retry_backoff": "seconds",
    "service.mttr": "seconds",
}


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


def _geometric_edges(lo_exp: int = -9, hi_exp: int = 12) -> Tuple[float, ...]:
    """HDR-style fixed bucket upper edges: 1-2-5 per decade.

    Spans a nanosecond to a terabyte-per-second-ish dynamic range so one
    bucket layout serves durations, byte counts, and rates alike with a
    worst-case relative error of 2.5x inside a bucket (tight enough for
    p50/p99 reporting, and *fixed*, so two histograms built from the same
    observations -- live and replayed from a log -- are bit-identical).
    """
    edges: List[float] = []
    for exponent in range(lo_exp, hi_exp + 1):
        for mantissa in (1.0, 2.0, 5.0):
            edges.append(mantissa * 10.0 ** exponent)
    return tuple(edges)


#: Shared bucket layout for every histogram (module-level so the registry
#: never allocates per-instance edge tables).
BUCKET_EDGES: Tuple[float, ...] = _geometric_edges()


class Histogram:
    """Streaming distribution: count / sum / min / max / mean + percentiles.

    Observations land in fixed geometric buckets (:data:`BUCKET_EDGES`, an
    HDR-histogram-style 1-2-5-per-decade layout), so :meth:`percentile` is
    O(buckets) with bounded relative error and no per-observation storage.
    Values at or below a bucket's upper edge belong to that bucket (edges
    are inclusive upper bounds); values above the last edge land in one
    overflow bucket whose reported quantiles are clamped to the observed
    ``max``.

    Non-finite observations (ζ = inf on a zero-throughput interval) are
    counted separately instead of poisoning the sum.
    """

    __slots__ = ("count", "total", "min", "max", "non_finite", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.non_finite = 0
        #: Sparse bucket counts: edge index -> observations (len(BUCKET_EDGES)
        #: is the overflow bucket).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            self.non_finite += 1
            return
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = bisect_left(BUCKET_EDGES, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-quantile (``q`` in [0, 1]) by linear interpolation within
        the containing bucket, clamped to the observed [min, max] range (so
        a single-sample histogram reports that sample exactly)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        for index in sorted(self.buckets):
            lower = BUCKET_EDGES[index - 1] if index > 0 else 0.0
            upper = (
                BUCKET_EDGES[index] if index < len(BUCKET_EDGES) else self.max
            )
            n = self.buckets[index]
            if cumulative + n >= target:
                fraction = (target - cumulative) / n
                value = lower + fraction * (upper - lower)
                return min(self.max, max(self.min, value))
            cumulative += n
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "non_finite": self.non_finite,
        }

    def summary(self) -> Dict[str, Any]:
        """The compact distribution doc embedded in demand profiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshot in sorted order."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


def collect_run_metrics(ctx) -> Dict[str, Dict[str, Any]]:
    """End-of-run hardware gauges + the live registry, as one snapshot.

    ``ctx`` is a :class:`~repro.engine.context.SparkContext`; typed loosely
    to keep this package free of engine imports.
    """
    metrics = ctx.metrics
    runtime = ctx.recorder.total_runtime
    for node in ctx.cluster.nodes:
        node.disk.sync()
        node.cpu.sync()
        prefix = f"node.{node.node_id}"
        metrics.gauge(f"{prefix}.disk.bytes_read").set(node.disk.bytes_read)
        metrics.gauge(f"{prefix}.disk.bytes_written").set(
            node.disk.bytes_written
        )
        metrics.gauge(f"{prefix}.disk.busy_seconds").set(
            node.disk.stats.busy_time
        )
        metrics.gauge(f"{prefix}.cpu.core_seconds").set(
            node.cpu.stats.occupancy_integral
        )
    fabric = ctx.cluster.fabric
    total_nic = 0.0
    for node_id in fabric.node_ids:
        for direction, link in (("out", fabric.egress(node_id)),
                                ("in", fabric.ingress(node_id))):
            name = f"node.{node_id}.nic.{direction}"
            metrics.gauge(f"{name}.bytes").set(link.bytes_transferred)
            utilisation = (
                link.bytes_transferred / (link.capacity * runtime)
                if runtime > 0 else 0.0
            )
            metrics.gauge(f"{name}.utilization").set(utilisation)
            total_nic += link.bytes_transferred
    metrics.gauge("network.bytes_total").set(total_nic)
    metrics.gauge("scheduler.control_messages").set(
        float(ctx.scheduler.channel.messages_sent)
    )
    metrics.gauge("run.simulated_seconds").set(runtime)
    metrics.gauge("run.stages").set(float(len(ctx.recorder.stages)))
    return metrics.snapshot()
