"""The trace-event record shared by the tracer, sinks, and history server.

One event is one timeline occurrence on the *simulated* clock.  Kinds follow
the Chrome ``trace_event`` phase vocabulary where it fits:

* ``B``/``E`` -- begin/end of a span (stage, task, I/O chunk, process);
* ``X`` -- a complete span reported at its end with an explicit duration
  (MAPE-K intervals, whose start predates the emission point);
* ``I`` -- an instant (pool resize, scheduler message, MAPE-K phase);
* ``C`` -- a counter sample (device queue depth, NIC bytes).

Events are totally ordered by ``(ts, seq)``: ``ts`` is simulated seconds and
``seq`` a per-tracer monotonic counter, so two runs at the same seed produce
byte-identical logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

BEGIN = "B"
END = "E"
COMPLETE = "X"
INSTANT = "I"
COUNTER = "C"

KINDS = (BEGIN, END, COMPLETE, INSTANT, COUNTER)

#: Marks the head of a JSONL event log; readers skip unknown schemas.
SCHEMA = "repro.trace/1"


@dataclass
class TraceEvent:
    """One occurrence on the simulated timeline."""

    ts: float
    seq: int
    kind: str
    cat: str
    name: str
    span: int = -1
    parent: int = -1
    dur: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Compact dict for the JSONL log (defaults omitted)."""
        doc: Dict[str, Any] = {
            "ts": self.ts,
            "seq": self.seq,
            "kind": self.kind,
            "cat": self.cat,
            "name": self.name,
        }
        if self.span >= 0:
            doc["span"] = self.span
        if self.parent >= 0:
            doc["parent"] = self.parent
        if self.kind == COMPLETE:
            doc["dur"] = self.dur
        if self.args:
            doc["args"] = self.args
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "TraceEvent":
        return cls(
            ts=float(doc["ts"]),
            seq=int(doc["seq"]),
            kind=doc["kind"],
            cat=doc.get("cat", ""),
            name=doc.get("name", ""),
            span=int(doc.get("span", -1)),
            parent=int(doc.get("parent", -1)),
            dur=float(doc.get("dur", 0.0)),
            args=doc.get("args", {}),
        )

    @property
    def end_ts(self) -> float:
        """Span end for ``X`` events; ``ts`` otherwise."""
        return self.ts + self.dur if self.kind == COMPLETE else self.ts
