"""The history server: reconstruct a run from its event log alone.

Spark's history server re-renders a finished application's UI from the
JSON event log; this module is the analogue for the simulator.  Given a
JSONL trace written by :class:`~repro.observability.sinks.JsonLinesSink`,
:func:`reconstruct` rebuilds

* total runtime and per-stage start/end/duration (matching the live
  :class:`~repro.engine.metrics.RunRecorder` exactly -- span timestamps are
  the same ``sim.now`` reads the recorder stores);
* the pool-size decision log and final per-executor pool sizes per stage
  (Fig. 6's raw data);
* the ζ trajectory of every MAPE-K interval, with the analyzer's decision
  (Fig. 7's raw data);
* the end-of-run metrics snapshot, when the log carries one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    END,
    INSTANT,
    SCHEMA,
    TraceEvent,
)


def load_events(path: str, allow_truncated: bool = False,
                warn=None) -> List[TraceEvent]:
    """Read a JSONL event log; meta lines and unknown kinds are skipped.

    With ``allow_truncated`` a malformed *final* line -- the signature of a
    writer killed mid-``write`` (crashed run, full disk) -- is skipped with
    a warning (``warn(message)``, defaulting to stderr) instead of raising,
    so ``repro history``/``repro profile`` can analyse a crashed run's
    partial log.  Corruption anywhere *before* the last line still raises,
    as does a file whose *only* line is malformed: that is not truncation
    but a damaged or wrong-format file.
    """
    events: List[TraceEvent] = []
    parsed_any = False  # a bad final line only counts as truncation if
    #                     at least one earlier line parsed cleanly
    with open(path, "r", encoding="utf-8") as stream:
        lines = stream.read().splitlines()
    last_lineno = len(lines)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        tolerate = allow_truncated and lineno == last_lineno and parsed_any
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate:
                _warn(warn, f"{path}:{lineno}: skipping partial trailing "
                            f"line (truncated log?)")
                break
            raise ValueError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from None
        if doc.get("kind") == "meta":
            schema = doc.get("schema", "")
            if schema and schema != SCHEMA:
                raise ValueError(
                    f"{path}: unsupported event-log schema {schema!r}"
                )
            parsed_any = True
            continue
        try:
            events.append(TraceEvent.from_json(doc))
            parsed_any = True
        except (KeyError, TypeError, ValueError) as exc:
            if tolerate:
                _warn(warn, f"{path}:{lineno}: skipping partial trailing "
                            f"event (truncated log?)")
                break
            raise ValueError(
                f"{path}:{lineno}: not a trace event "
                f"(is this really an event log?): {exc!r}"
            ) from None
    return events


def _warn(warn, message: str) -> None:
    if warn is None:
        import sys

        print(f"warning: {message}", file=sys.stderr)
    else:
        warn(message)


@dataclass
class StageHistory:
    """One stage as reconstructed from the log."""

    stage_id: int
    name: str
    is_io_marked: bool
    num_tasks: int
    start_time: float
    end_time: Optional[float] = None
    tasks_seen: int = 0
    final_pool_sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time


@dataclass
class PoolDecision:
    """One pool resize, as logged by the executor's effector path."""

    time: float
    executor_id: int
    stage_id: int
    pool_size: int
    reason: str


@dataclass
class IntervalHistory:
    """One MAPE-K interval: the ζ-trajectory sample."""

    start_time: float
    end_time: float
    executor_id: int
    stage_id: int
    threads: int
    zeta: float
    decision: str


@dataclass
class HistoryReport:
    """Everything :func:`reconstruct` recovers from one event log."""

    stages: List[StageHistory] = field(default_factory=list)
    pool_decisions: List[PoolDecision] = field(default_factory=list)
    intervals: List[IntervalHistory] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None
    application: Dict[str, Any] = field(default_factory=dict)
    #: Spans begun but never ended, counted per category -- non-empty for
    #: truncated logs (crashed runs) and useful to see *where* it died.
    open_spans: Dict[str, int] = field(default_factory=dict)

    @property
    def total_runtime(self) -> float:
        """First stage start to last stage end, as the recorder computes it."""
        ends = [s.end_time for s in self.stages if s.end_time is not None]
        if not self.stages or not ends:
            return 0.0
        return max(ends) - self.stages[0].start_time

    def stage(self, stage_id: int) -> StageHistory:
        for stage in self.stages:
            if stage.stage_id == stage_id:
                return stage
        raise KeyError(f"no stage {stage_id} in this event log")

    def stage_durations(self) -> List[float]:
        return [stage.duration for stage in self.stages]

    def zeta_trajectory(
        self, executor_id: Optional[int] = None,
        stage_id: Optional[int] = None,
    ) -> List[IntervalHistory]:
        return [
            interval for interval in self.intervals
            if (executor_id is None or interval.executor_id == executor_id)
            and (stage_id is None or interval.stage_id == stage_id)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_runtime": self.total_runtime,
            "application": self.application,
            "stages": [
                {
                    "stage_id": s.stage_id,
                    "name": s.name,
                    "is_io_marked": s.is_io_marked,
                    "num_tasks": s.num_tasks,
                    "tasks_seen": s.tasks_seen,
                    "start_time": s.start_time,
                    "end_time": s.end_time,
                    "duration": s.duration,
                    "final_pool_sizes": {
                        str(executor): size
                        for executor, size in sorted(s.final_pool_sizes.items())
                    },
                }
                for s in self.stages
            ],
            "pool_decisions": [
                {
                    "time": d.time,
                    "executor_id": d.executor_id,
                    "stage_id": d.stage_id,
                    "pool_size": d.pool_size,
                    "reason": d.reason,
                }
                for d in self.pool_decisions
            ],
            "zeta_trajectory": [
                {
                    "start_time": i.start_time,
                    "end_time": i.end_time,
                    "executor_id": i.executor_id,
                    "stage_id": i.stage_id,
                    "threads": i.threads,
                    "zeta": i.zeta if i.zeta != float("inf") else "inf",
                    "decision": i.decision,
                }
                for i in self.intervals
            ],
            "metrics": self.metrics,
            "open_spans": {cat: count
                           for cat, count in sorted(self.open_spans.items())},
        }


def reconstruct(events: Iterable[TraceEvent]) -> HistoryReport:
    """Rebuild a run's timeline from its event stream."""
    report = HistoryReport()
    open_stages: Dict[int, StageHistory] = {}  # span id -> stage
    open_cats: Dict[int, str] = {}  # span id -> category, for open-span count
    for event in events:
        if event.kind == BEGIN:
            open_cats[event.span] = event.cat
        elif event.kind == END:
            open_cats.pop(event.span, None)
        if event.kind == BEGIN and event.cat == "stage":
            stage = StageHistory(
                stage_id=int(event.args.get("stage_id", -1)),
                name=event.name,
                is_io_marked=bool(event.args.get("io_marked", False)),
                num_tasks=int(event.args.get("num_tasks", 0)),
                start_time=event.ts,
            )
            open_stages[event.span] = stage
            report.stages.append(stage)
        elif event.kind == END and event.span in open_stages:
            open_stages.pop(event.span).end_time = event.ts
        elif event.kind == BEGIN and event.cat == "task":
            stage_id = event.args.get("stage_id")
            if stage_id is not None:
                for stage in reversed(report.stages):
                    if stage.stage_id == int(stage_id):
                        stage.tasks_seen += 1
                        break
        elif event.kind == INSTANT and event.cat == "pool":
            decision = PoolDecision(
                time=event.ts,
                executor_id=int(event.args["executor_id"]),
                stage_id=int(event.args.get("stage_id", -1)),
                pool_size=int(event.args["size"]),
                reason=event.args.get("reason", ""),
            )
            report.pool_decisions.append(decision)
            for stage in reversed(report.stages):
                if stage.stage_id == decision.stage_id:
                    stage.final_pool_sizes[decision.executor_id] = (
                        decision.pool_size
                    )
                    break
        elif event.kind == COMPLETE and event.cat == "mapek":
            zeta = event.args.get("zeta", 0.0)
            report.intervals.append(
                IntervalHistory(
                    start_time=event.ts,
                    end_time=event.end_ts,
                    executor_id=int(event.args.get("executor_id", -1)),
                    stage_id=int(event.args.get("stage_id", -1)),
                    threads=int(event.args.get("threads", 0)),
                    zeta=float("inf") if zeta == "inf" else float(zeta),
                    decision=event.args.get("decision", ""),
                )
            )
        elif event.kind == INSTANT and event.cat == "app":
            if event.name == "application-start":
                report.application = dict(event.args)
            elif event.name == "metrics":
                report.metrics = event.args.get("snapshot")
    for cat in open_cats.values():
        report.open_spans[cat] = report.open_spans.get(cat, 0) + 1
    return report
