"""Chrome ``trace_event`` exporter: open any run in Perfetto.

Emits the JSON Object Format (``{"traceEvents": [...]}``) understood by
``chrome://tracing`` and https://ui.perfetto.dev.  Span begin/end pairs are
folded into complete (``"X"``) events so the exporter never depends on the
viewer's begin/end stack matching.

Track layout: the driver (stages, scheduler, MAPE-K instants) is pid 0;
each executor is pid ``executor_id + 1``.  Within a pid, overlapping spans
(concurrent tasks on one executor) are spread across thread lanes by a
greedy first-free-lane allocator so they render side by side instead of
stacking incorrectly.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, IO, List, Optional, Union

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    COUNTER,
    END,
    INSTANT,
    TraceEvent,
)
from repro.observability.sinks import TraceSink

_SECONDS_TO_US = 1e6

#: Phases this exporter produces (a subset of the trace_event vocabulary).
CHROME_PHASES = ("X", "i", "C", "M")


class _LaneAllocator:
    """Greedy first-free-lane assignment of spans to thread ids."""

    def __init__(self) -> None:
        self._busy_until: List[float] = []

    def acquire(self, start: float) -> int:
        for lane, busy_until in enumerate(self._busy_until):
            if busy_until <= start:
                self._busy_until[lane] = math.inf
                return lane
        self._busy_until.append(math.inf)
        return len(self._busy_until) - 1

    def release(self, lane: int, end: float) -> None:
        self._busy_until[lane] = end


class ChromeTraceSink(TraceSink):
    """Buffers the event stream and writes one trace_event JSON on close."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._target = target
        self._events: List[Dict[str, Any]] = []
        self._open_spans: Dict[int, tuple] = {}  # span -> (begin event, lane)
        self._lanes: Dict[int, _LaneAllocator] = {}
        self._named_pids: Dict[int, str] = {}

    # -- track assignment --------------------------------------------------

    @staticmethod
    def _pid(event: TraceEvent) -> int:
        executor = event.args.get("executor_id")
        return 0 if executor is None else int(executor) + 1

    def _name_pid(self, pid: int) -> None:
        if pid in self._named_pids:
            return
        name = "driver" if pid == 0 else f"executor {pid - 1}"
        self._named_pids[pid] = name
        self._events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })

    def _allocator(self, pid: int) -> _LaneAllocator:
        if pid not in self._lanes:
            self._lanes[pid] = _LaneAllocator()
        return self._lanes[pid]

    # -- sink interface ----------------------------------------------------

    def write(self, event: TraceEvent) -> None:
        if event.kind == BEGIN:
            pid = self._pid(event)
            self._name_pid(pid)
            lane = self._allocator(pid).acquire(event.ts)
            self._open_spans[event.span] = (event, lane)
        elif event.kind == END:
            entry = self._open_spans.pop(event.span, None)
            if entry is None:
                return  # end without begin: dropped, not fatal
            begin, lane = entry
            pid = self._pid(begin)
            self._allocator(pid).release(lane, event.ts)
            args = dict(begin.args)
            args.update(event.args)
            self._emit_complete(begin, event.ts - begin.ts, pid, lane, args)
        elif event.kind == COMPLETE:
            pid = self._pid(event)
            self._name_pid(pid)
            allocator = self._allocator(pid)
            lane = allocator.acquire(event.ts)
            allocator.release(lane, event.end_ts)
            self._emit_complete(event, event.dur, pid, lane, dict(event.args))
        elif event.kind == INSTANT:
            pid = self._pid(event)
            self._name_pid(pid)
            self._events.append({
                "name": event.name,
                "cat": event.cat,
                "ph": "i",
                "s": "t",
                "ts": event.ts * _SECONDS_TO_US,
                "pid": pid,
                "tid": 0,
                "args": event.args,
            })
        elif event.kind == COUNTER:
            pid = self._pid(event)
            self._name_pid(pid)
            self._events.append({
                "name": f"{event.cat}.{event.name}",
                "ph": "C",
                "ts": event.ts * _SECONDS_TO_US,
                "pid": pid,
                "tid": 0,
                "args": {"value": event.args.get("value", 0.0)},
            })

    def _emit_complete(self, begin: TraceEvent, dur: float, pid: int,
                       lane: int, args: Dict[str, Any]) -> None:
        self._events.append({
            "name": begin.name,
            "cat": begin.cat,
            "ph": "X",
            "ts": begin.ts * _SECONDS_TO_US,
            "dur": max(0.0, dur) * _SECONDS_TO_US,
            "pid": pid,
            "tid": lane,
            "args": args,
        })

    def close(self) -> None:
        # Spans still open at close become zero-length markers at their start.
        for span, (begin, lane) in sorted(self._open_spans.items()):
            self._emit_complete(begin, 0.0, self._pid(begin), lane,
                                dict(begin.args))
        self._open_spans.clear()
        document = {"traceEvents": self._events, "displayTimeUnit": "ms"}
        if isinstance(self._target, str):
            with open(self._target, "w", encoding="utf-8") as stream:
                json.dump(document, stream)
        else:
            json.dump(document, self._target)


def write_counter_tracks(
    target: Union[str, IO[str]],
    tracks: Dict[str, List[tuple]],
) -> int:
    """Write a standalone Chrome trace of counter (``"C"``) tracks.

    ``tracks`` maps a track name to ``[(ts_seconds, value), ...]`` samples
    (the shape :meth:`~repro.observability.profiler.ProfilerSink.
    counter_tracks` returns).  Tracks are emitted in sorted-name order so
    output bytes are deterministic.  Returns the number of events written.
    """
    events: List[Dict[str, Any]] = []
    for name in sorted(tracks):
        for ts, value in tracks[name]:
            events.append({
                "name": name,
                "ph": "C",
                "ts": ts * _SECONDS_TO_US,
                "pid": 0,
                "tid": 0,
                "args": {"value": value},
            })
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(document, stream)
    else:
        json.dump(document, target)
    return len(events)


def validate_chrome_trace(source: Union[str, Dict[str, Any]]) -> int:
    """Validate a trace document against the ``trace_event`` JSON schema.

    Accepts a file path or an already-parsed document.  Returns the number
    of trace events; raises :class:`ValueError` on the first violation.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    else:
        document = source
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where}: missing required key {key!r}")
        if event["ph"] not in CHROME_PHASES:
            raise ValueError(f"{where}: unknown phase {event['ph']!r}")
        if event["ph"] == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: 'ts' must be numeric")
        if event["ts"] < 0:
            raise ValueError(f"{where}: negative timestamp")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: 'X' event needs dur >= 0")
    return len(events)
