"""Trace sinks: where the tracer's event stream lands.

* :class:`MemorySink` -- keeps events in a list for tests and in-process
  inspection.
* :class:`JsonLinesSink` -- the Spark-eventlog analogue: one JSON object per
  line, headed by a schema marker, replayable by
  :mod:`repro.observability.history`.  Output is deterministic (insertion
  order = ``(ts, seq)`` order) so logs from identical seeds diff clean.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from repro.observability.events import SCHEMA, TraceEvent


class TraceSink:
    """Receives every event the tracer emits; close() flushes."""

    #: Sinks that *consume* the stream to build demand profiles set this;
    #: the context checks it to decide whether ``ctx.profiling`` is on.
    is_profiler = False

    def write(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush buffered state; further writes are undefined."""


class MemorySink(TraceSink):
    """In-memory event store."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_cat(self, cat: str) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == cat]


class JsonLinesSink(TraceSink):
    """Spark-style JSONL event log.

    Accepts a path (opened and owned) or an already-open text stream (not
    closed, so callers can write to ``io.StringIO`` in tests).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._owns_stream = isinstance(target, str)
        self._stream: Optional[IO[str]] = (
            open(target, "w", encoding="utf-8") if self._owns_stream
            else target
        )
        self._stream.write(json.dumps({"kind": "meta", "schema": SCHEMA}))
        self._stream.write("\n")

    def write(self, event: TraceEvent) -> None:
        if self._stream is None:
            raise RuntimeError("sink is closed")
        self._stream.write(
            json.dumps(event.to_json(), separators=(",", ":"), sort_keys=True)
        )
        self._stream.write("\n")

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._stream = None
