"""The span tracer: an event bus from instrumentation sites to sinks.

Design constraints (ISSUE 1):

* **Zero-cost when disabled.**  Call sites guard with ``if tracer.enabled:``
  before building argument dicts, and :data:`NULL_TRACER` (the default wired
  into every :class:`~repro.engine.context.SparkContext`) is permanently
  disabled, so benchmark runs pay one attribute read per potential event.
* **Deterministic.**  Timestamps come from the simulated clock and ties are
  broken by an emission sequence number, so identical seeds give identical
  logs.
* **Pluggable sinks.**  The tracer fans every event out to its sinks
  (in-memory, JSONL event log, Chrome trace); sinks never see partial spans.

The tracer is clock-agnostic at construction: the context that owns the
simulator binds the clock (``bind_clock``) before the first event, which
lets command-line code build a tracer before any cluster exists.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    COUNTER,
    END,
    INSTANT,
    TraceEvent,
)
from repro.observability.sinks import TraceSink


def _zero_clock() -> float:
    return 0.0


class Tracer:
    """Emits :class:`TraceEvent` records to every attached sink."""

    def __init__(
        self,
        sinks: Iterable[TraceSink] = (),
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sinks = list(sinks)
        self.clock = clock if clock is not None else _zero_clock
        self.enabled = True
        self._next_seq = 0
        self._next_span = 0
        self._closed = False

    # -- wiring ------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock (called by the owning context)."""
        self.clock = clock

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    # -- emission ----------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.write(event)

    def _stamp(self) -> tuple:
        seq = self._next_seq
        self._next_seq += 1
        return self.clock(), seq

    def begin(self, cat: str, name: str, parent: int = -1,
              **args: Any) -> int:
        """Open a span; returns its id for the matching :meth:`end`."""
        span = self._next_span
        self._next_span += 1
        ts, seq = self._stamp()
        self._emit(TraceEvent(ts, seq, BEGIN, cat, name,
                              span=span, parent=parent, args=args))
        return span

    def end(self, span: int, **args: Any) -> None:
        """Close a span opened by :meth:`begin`."""
        ts, seq = self._stamp()
        self._emit(TraceEvent(ts, seq, END, "", "", span=span, args=args))

    def complete(self, cat: str, name: str, start: float, end: float,
                 parent: int = -1, **args: Any) -> None:
        """Report a finished span whose start predates this call."""
        _ts, seq = self._stamp()
        self._emit(TraceEvent(start, seq, COMPLETE, cat, name,
                              parent=parent, dur=max(0.0, end - start),
                              args=args))

    def instant(self, cat: str, name: str, **args: Any) -> None:
        ts, seq = self._stamp()
        self._emit(TraceEvent(ts, seq, INSTANT, cat, name, args=args))

    def counter(self, cat: str, name: str, value: float, **args: Any) -> None:
        ts, seq = self._stamp()
        args["value"] = value
        self._emit(TraceEvent(ts, seq, COUNTER, cat, name, args=args))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for sink in self.sinks:
            sink.close()


class NullTracer(Tracer):
    """The disabled tracer: never emits, never costs more than one check.

    Instrumentation sites are expected to guard on ``tracer.enabled``; the
    overridden methods exist so an unguarded call is still harmless.
    """

    def __init__(self) -> None:
        super().__init__(sinks=())
        self.enabled = False

    def begin(self, cat: str, name: str, parent: int = -1,
              **args: Any) -> int:  # noqa: ARG002 - interface parity
        return -1

    def end(self, span: int, **args: Any) -> None:
        pass

    def complete(self, cat: str, name: str, start: float, end: float,
                 parent: int = -1, **args: Any) -> None:
        pass

    def instant(self, cat: str, name: str, **args: Any) -> None:
        pass

    def counter(self, cat: str, name: str, value: float, **args: Any) -> None:
        pass


#: Shared disabled tracer; safe because it holds no state and no sinks.
NULL_TRACER = NullTracer()
