"""Multi-resource demand profiler: utilization series and demand vectors.

The Elasecutor direction (ROADMAP) needs each executor's *time-varying,
multi-resource* demand -- CPU share, disk read/write bandwidth, NIC in/out,
queue depth -- not just the single ζ signal the MAPE-K loop consumes.  This
module derives exactly that from the trace-event stream:

* :class:`ProfilerSink` is a regular
  :class:`~repro.observability.sinks.TraceSink`.  Attached to a live tracer
  it profiles a run as it executes; fed a replayed event log
  (:func:`profile_events`) it produces **bit-identical** output, because the
  event stream is its only input and JSON floats round-trip exactly.
* Node-level series come from ``cat="profile"`` counter events emitted by
  the monitoring service once per sampling window *only when profiling is
  enabled* (``ctx.profiling``), so default event logs stay byte-identical.
* Executor-level series are rebuilt from task/io spans spread over a fixed
  sampling grid anchored at t=0, so no extra instrumentation is needed and
  plain ``--events`` logs (recorded without profiling) still profile.
* Per-stage **demand profiles** (peak/mean per resource, byte totals per
  I/O kind, duration) and task/stage distribution metrics (p50/p90/p99 via
  the registry's :class:`~repro.observability.metrics.Histogram`) are
  serialized to the versioned :data:`PROFILE_SCHEMA` JSON document.

Live attachment additionally flips ``ctx.profiling`` on, which routes task
duration / queueing delay / stage runtime through the metrics registry as
histograms (visible in the trailing ``metrics`` event) and turns on the
monitoring probe.  The profile *document*, however, is always computed from
events alone -- that is what makes live and offline runs agree byte for
byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.observability.events import (
    BEGIN,
    COUNTER,
    END,
    INSTANT,
    TraceEvent,
)
from repro.observability.metrics import Histogram
from repro.observability.sinks import TraceSink

#: Version marker at the head of every demand-profile document.
PROFILE_SCHEMA = "repro.profile/1"

#: Per-node rate/utilization keys carried by each ``profile`` counter event
#: (emitted by :class:`~repro.monitoring.sampler.MonitoringService`).
PROBE_KEYS = (
    "cpu_util",
    "disk_util",
    "disk_read_bps",
    "disk_write_bps",
    "nic_in_bps",
    "nic_out_bps",
    "disk_queue",
    "cpu_queue",
)


def _deposit(bins: Dict[int, float], start: float, end: float,
             total: float, interval: float) -> None:
    """Spread ``total`` work units uniformly over ``[start, end)``.

    ``bins`` maps grid index -> average rate (units/second) over that bin;
    the grid is anchored at t=0 with width ``interval``.  A zero-length
    span lands as an impulse in its containing bin.  Accumulation happens
    in event-stream order, which is identical live and replayed, so the
    resulting floats match bit for bit.
    """
    if end <= start:
        index = int(start // interval)
        bins[index] = bins.get(index, 0.0) + total / interval
        return
    rate = total / (end - start)
    first = int(start // interval)
    last = int(end // interval)
    for index in range(first, last + 1):
        lo = max(start, index * interval)
        hi = min(end, (index + 1) * interval)
        if hi > lo:
            bins[index] = bins.get(index, 0.0) + rate * (hi - lo) / interval


@dataclass
class _Aggregate:
    """Streaming peak/time-weighted-mean over windowed probe samples."""

    peak: float = 0.0
    weighted_sum: float = 0.0
    weight: float = 0.0

    def add(self, value: float, window: float) -> None:
        if value > self.peak:
            self.peak = value
        self.weighted_sum += value * window
        self.weight += window

    @property
    def mean(self) -> float:
        return self.weighted_sum / self.weight if self.weight > 0 else 0.0

    def to_doc(self) -> Dict[str, float]:
        return {"peak": self.peak, "mean": self.mean}


@dataclass
class _StageProfile:
    stage_id: int
    name: str
    io_marked: bool
    num_tasks: int
    start: float
    end: Optional[float] = None
    tasks_seen: int = 0
    io_bytes: Dict[str, float] = field(default_factory=dict)
    resources: Dict[str, _Aggregate] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class _ExecutorProfile:
    executor_id: int
    tasks: int = 0
    crashed_tasks: int = 0
    io_bytes: float = 0.0
    io_wait: float = 0.0
    active: Dict[int, float] = field(default_factory=dict)  # grid: avg tasks
    io_bps: Dict[int, float] = field(default_factory=dict)  # grid: bytes/s


class ProfilerSink(TraceSink):
    """Builds demand profiles from a trace-event stream.

    ``interval`` sets the sampling grid for the executor series (seconds of
    simulated time per bin).  ``out`` (optional) is a path where the demand
    profile JSON is written on :meth:`close` via
    :func:`~repro.atomicio.atomic_write_json` -- identical bytes live and
    offline.  ``trace_out`` (optional) writes Chrome counter tracks on
    close (see :func:`~repro.observability.chrome.write_counter_tracks`).
    """

    #: Marks this sink for ``ctx.profiling`` detection (see SparkContext).
    is_profiler = True

    def __init__(self, interval: float = 1.0, out: Optional[str] = None,
                 trace_out: Optional[str] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.out = out
        self.trace_out = trace_out
        self.application: Dict[str, Any] = {}
        self.stages: List[_StageProfile] = []
        self.executors: Dict[int, _ExecutorProfile] = {}
        self.histograms: Dict[str, Histogram] = {
            "tasks.duration": Histogram(),
            "tasks.queue_delay": Histogram(),
            "tasks.io_wait": Histogram(),
            "stages.runtime": Histogram(),
        }
        #: node_id -> [(ts, {probe key: value}), ...]
        self.node_samples: Dict[int, List[Tuple[float, Dict[str, float]]]] = {}
        self._open: Dict[int, TraceEvent] = {}
        self._stage_start: Dict[int, float] = {}
        self._stage_by_id: Dict[int, _StageProfile] = {}
        self._closed = False

    # -- sink interface ----------------------------------------------------

    def write(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == BEGIN:
            self._on_begin(event)
        elif kind == END:
            self._on_end(event)
        elif kind == COUNTER and event.cat == "profile":
            self._on_probe(event)
        elif kind == INSTANT and event.cat == "app" \
                and event.name == "application-start":
            self.application = {
                key: event.args[key]
                for key in ("num_nodes", "cores_per_node", "device")
                if key in event.args
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.out:
            from repro.atomicio import atomic_write_json

            atomic_write_json(self.out, self.demand_profile())
        if self.trace_out:
            from repro.observability.chrome import write_counter_tracks

            write_counter_tracks(self.trace_out, self.counter_tracks())

    # -- event handling ----------------------------------------------------

    def _on_begin(self, event: TraceEvent) -> None:
        cat = event.cat
        if cat == "stage":
            stage = _StageProfile(
                stage_id=int(event.args.get("stage_id", -1)),
                name=event.name,
                io_marked=bool(event.args.get("io_marked", False)),
                num_tasks=int(event.args.get("num_tasks", 0)),
                start=event.ts,
            )
            self.stages.append(stage)
            self._stage_by_id[stage.stage_id] = stage
            self._stage_start[stage.stage_id] = event.ts
            self._open[event.span] = event
        elif cat in ("task", "io"):
            self._open[event.span] = event
            if cat == "task":
                stage_id = int(event.args.get("stage_id", -1))
                stage = self._stage_by_id.get(stage_id)
                if stage is not None:
                    stage.tasks_seen += 1
                start = self._stage_start.get(stage_id)
                if start is not None:
                    self.histograms["tasks.queue_delay"].observe(
                        event.ts - start
                    )

    def _on_end(self, event: TraceEvent) -> None:
        begin = self._open.pop(event.span, None)
        if begin is None:
            return
        if begin.cat == "stage":
            stage = self._stage_by_id.get(int(begin.args.get("stage_id", -1)))
            if stage is not None and stage.end is None:
                stage.end = event.ts
                self.histograms["stages.runtime"].observe(stage.duration)
        elif begin.cat == "task":
            executor = self._executor(int(begin.args.get("executor_id", -1)))
            if event.args.get("crashed"):
                executor.crashed_tasks += 1
                return
            executor.tasks += 1
            duration = event.ts - begin.ts
            io_wait = float(event.args.get("io_wait", 0.0))
            executor.io_wait += io_wait
            self.histograms["tasks.duration"].observe(duration)
            self.histograms["tasks.io_wait"].observe(io_wait)
            _deposit(executor.active, begin.ts, event.ts, duration,
                     self.interval)
        elif begin.cat == "io":
            executor = self._executor(int(begin.args.get("executor_id", -1)))
            size = float(begin.args.get("bytes", 0.0))
            executor.io_bytes += size
            _deposit(executor.io_bps, begin.ts, event.ts, size, self.interval)
            parent = self._open.get(begin.parent)
            if parent is not None and parent.cat == "task":
                stage = self._stage_by_id.get(
                    int(parent.args.get("stage_id", -1))
                )
                if stage is not None:
                    kind = begin.name
                    stage.io_bytes[kind] = (
                        stage.io_bytes.get(kind, 0.0) + size
                    )

    def _on_probe(self, event: TraceEvent) -> None:
        args = event.args
        node_id = int(args.get("node_id", -1))
        window = float(args.get("window", self.interval))
        sample = {key: float(args.get(key, 0.0)) for key in PROBE_KEYS}
        self.node_samples.setdefault(node_id, []).append((event.ts, sample))
        stage = self._stage_by_id.get(int(args.get("stage_id", -1)))
        if stage is not None:
            for key, value in sample.items():
                aggregate = stage.resources.get(key)
                if aggregate is None:
                    aggregate = stage.resources[key] = _Aggregate()
                aggregate.add(value, window)

    def _executor(self, executor_id: int) -> _ExecutorProfile:
        profile = self.executors.get(executor_id)
        if profile is None:
            profile = self.executors[executor_id] = _ExecutorProfile(
                executor_id
            )
        return profile

    # -- outputs -----------------------------------------------------------

    def demand_profile(self) -> Dict[str, Any]:
        """The versioned demand-profile document (JSON-serialisable)."""
        node_docs = []
        for node_id in sorted(self.node_samples):
            samples = self.node_samples[node_id]
            aggregates: Dict[str, _Aggregate] = {}
            for _ts, sample in samples:
                for key, value in sample.items():
                    aggregate = aggregates.get(key)
                    if aggregate is None:
                        aggregate = aggregates[key] = _Aggregate()
                    aggregate.add(value, 1.0)
            node_docs.append({
                "node_id": node_id,
                "samples": len(samples),
                "resources": {key: aggregates[key].to_doc()
                              for key in sorted(aggregates)},
            })
        executor_docs = []
        for executor_id in sorted(self.executors):
            executor = self.executors[executor_id]
            executor_docs.append({
                "executor_id": executor_id,
                "tasks": executor.tasks,
                "crashed_tasks": executor.crashed_tasks,
                "io_bytes": executor.io_bytes,
                "io_wait_seconds": executor.io_wait,
                "peak_active_tasks": (
                    max(executor.active.values()) if executor.active else 0.0
                ),
                "peak_io_bps": (
                    max(executor.io_bps.values()) if executor.io_bps else 0.0
                ),
            })
        return {
            "schema": PROFILE_SCHEMA,
            "interval": self.interval,
            "application": dict(self.application),
            "stages": [
                {
                    "stage_id": stage.stage_id,
                    "name": stage.name,
                    "io_marked": stage.io_marked,
                    "num_tasks": stage.num_tasks,
                    "tasks_seen": stage.tasks_seen,
                    "start": stage.start,
                    "end": stage.end,
                    "duration": stage.duration,
                    "io_bytes": {kind: stage.io_bytes[kind]
                                 for kind in sorted(stage.io_bytes)},
                    "resources": {key: stage.resources[key].to_doc()
                                  for key in sorted(stage.resources)},
                }
                for stage in self.stages
            ],
            "executors": executor_docs,
            "nodes": node_docs,
            "distributions": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
                if self.histograms[name].count
            },
        }

    def executor_series(self) -> Dict[int, Dict[str, List[Tuple[float, float]]]]:
        """Per-executor grid series: ``{id: {metric: [(t, value), ...]}}``.

        ``t`` is the bin's left edge; ``active_tasks`` is the average task
        concurrency over the bin and ``io_bps`` the average I/O bandwidth.
        """
        series: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
        for executor_id in sorted(self.executors):
            executor = self.executors[executor_id]
            series[executor_id] = {
                "active_tasks": [
                    (index * self.interval, executor.active[index])
                    for index in sorted(executor.active)
                ],
                "io_bps": [
                    (index * self.interval, executor.io_bps[index])
                    for index in sorted(executor.io_bps)
                ],
            }
        return series

    def counter_tracks(self) -> Dict[str, List[Tuple[float, float]]]:
        """Chrome counter tracks: ``{track name: [(ts, value), ...]}``."""
        tracks: Dict[str, List[Tuple[float, float]]] = {}
        for node_id in sorted(self.node_samples):
            for key in PROBE_KEYS:
                track = [
                    (ts, sample[key])
                    for ts, sample in self.node_samples[node_id]
                    if key in sample
                ]
                if track:
                    tracks[f"node{node_id}.{key}"] = track
        for executor_id, metrics in self.executor_series().items():
            for key, track in metrics.items():
                if track:
                    tracks[f"exec{executor_id}.{key}"] = track
        return tracks


def profile_events(events: Iterable[TraceEvent], interval: float = 1.0,
                   out: Optional[str] = None,
                   trace_out: Optional[str] = None) -> ProfilerSink:
    """Offline profiling: replay ``events`` through a fresh sink.

    Returns the closed sink; its :meth:`~ProfilerSink.demand_profile` is
    byte-identical (after JSON serialization) to what a live sink attached
    to the originating run produces, because both consume the same event
    stream and JSON floats round-trip exactly.
    """
    sink = ProfilerSink(interval=interval, out=out, trace_out=trace_out)
    for event in events:
        sink.write(event)
    sink.close()
    return sink
