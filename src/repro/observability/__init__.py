"""Structured event tracing and metrics: the simulator's "history server".

The paper's whole argument rests on *seeing* what executors do -- epoll wait
ε, throughput µ, congestion ζ, pool resizes, and the extended
scheduler-notification protocol.  This package provides the unified timeline
those signals previously lacked:

* :mod:`repro.observability.tracer` -- hierarchical spans (job → stage →
  task → I/O chunk; MAPE-K interval → monitor/analyze/plan/execute) emitted
  through an event bus to pluggable sinks, stamped with simulated time and a
  sequence number so logs are deterministic and diffable across seeds.
* :mod:`repro.observability.sinks` -- in-memory store and a Spark-style
  JSONL event log.
* :mod:`repro.observability.chrome` -- Chrome ``trace_event`` exporter, so
  any run opens in Perfetto / ``chrome://tracing``.
* :mod:`repro.observability.metrics` -- counters/gauges/histograms
  registered centrally and snapshot at run end.
* :mod:`repro.observability.history` -- the history-server analogue:
  reconstructs a run (per-stage runtime, pool-size decisions, the ζ
  trajectory) from an event log alone.
* :mod:`repro.observability.profiler` -- multi-resource demand profiler:
  per-node/per-executor utilization series, per-stage demand vectors, and
  task/stage latency distributions, identical live or replayed from a log
  (``repro profile``).

Tracing is zero-cost when disabled: every instrumentation site guards on
``tracer.enabled`` before building any payload, and the default
:data:`NULL_TRACER` never emits.
"""

from repro.observability.chrome import (
    ChromeTraceSink,
    validate_chrome_trace,
    write_counter_tracks,
)
from repro.observability.events import TraceEvent
from repro.observability.history import HistoryReport, load_events, reconstruct
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.observability.profiler import (
    PROFILE_SCHEMA,
    ProfilerSink,
    profile_events,
)
from repro.observability.sinks import JsonLinesSink, MemorySink, TraceSink
from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryReport",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_SCHEMA",
    "ProfilerSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "collect_run_metrics",
    "load_events",
    "profile_events",
    "reconstruct",
    "validate_chrome_trace",
    "write_counter_tracks",
]
