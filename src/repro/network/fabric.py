"""Fair-share network links and the cluster fabric.

DAS-5 nodes are connected by a non-blocking fabric, so we model no core
congestion: contention happens only at node NICs.  Each NIC is full duplex --
one :class:`NetworkLink` for egress and one for ingress -- and every link
shares its bandwidth equally among active flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simulation.core import Event, Simulator
from repro.simulation.resources import FairShareResource, Job

GBIT = 1e9 / 8.0  # bytes/second for one gigabit


class NetworkLink(FairShareResource):
    """One direction of a node NIC, shared equally among active flows.

    The equal split is exactly the base class's rate curve, so links inherit
    both :meth:`~FairShareResource.rates` and its allocation-free scalar twin
    :meth:`~FairShareResource.uniform_rate` unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth: float,
        latency: float = 0.0001,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        super().__init__(sim, name, capacity=bandwidth)
        self.latency = latency
        self.bytes_transferred = 0.0

    def send(self, size: float, tag: str = "flow") -> Event:
        """Move ``size`` bytes through this link; fires when done."""
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        done = self.sim.event()

        def start() -> None:
            job = self.submit(size, tag=tag)
            job.event.add_callback(lambda _e: self._finish(done, size))

        self.sim.call_in(self.latency, start)
        return done

    def _finish(self, done: Event, size: float) -> None:
        self.bytes_transferred += size
        done.succeed(size)

    def sample_bytes(self) -> float:
        """Bytes through this link *including* in-flight flow progress.

        ``bytes_transferred`` only advances at flow completion, which makes
        long shuffles look like end-of-flow bursts; the profiler probe needs
        the continuous reading.  Non-mutating, so sampling never perturbs
        the event timeline.
        """
        return self.sample_counters()["work_done"]


class NetworkFabric:
    """All node NICs plus point-to-point transfer orchestration."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 10.0 * GBIT,
        latency: float = 0.0001,
    ) -> None:
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self._egress: Dict[int, NetworkLink] = {}
        self._ingress: Dict[int, NetworkLink] = {}
        #: Optional span tracer, wired by the owning context.
        self.tracer = None

    def register_node(self, node_id: int, bandwidth: Optional[float] = None) -> None:
        if node_id in self._egress:
            raise ValueError(f"node {node_id} already registered")
        capacity = bandwidth if bandwidth is not None else self.bandwidth
        self._egress[node_id] = NetworkLink(
            self.sim, f"net.out.{node_id}", capacity, self.latency
        )
        self._ingress[node_id] = NetworkLink(
            self.sim, f"net.in.{node_id}", capacity, self.latency
        )

    def egress(self, node_id: int) -> NetworkLink:
        return self._egress[node_id]

    def ingress(self, node_id: int) -> NetworkLink:
        return self._ingress[node_id]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._egress)

    def transfer(self, src: int, dst: int, size: float, tag: str = "flow") -> Event:
        """Move ``size`` bytes from ``src`` to ``dst``.

        The flow occupies the source egress and destination ingress links
        concurrently and completes when both have passed the bytes (i.e. the
        bottleneck link determines the duration).  A same-node transfer is
        free: Spark short-circuits loopback fetches through memory.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.counter(
                "network", f"nic.{src}", size,
                dst=dst, tag=tag,
                active_flows=self._egress[src].active_jobs + 1
                if src in self._egress else 1,
            )
        if src == dst:
            done = self.sim.event()
            done.succeed(size)
            return done
        halves = [
            self._egress[src].send(size, tag=tag),
            self._ingress[dst].send(size, tag=tag),
        ]
        done = self.sim.event()
        self.sim.all_of(halves).add_callback(lambda _e: done.succeed(size))
        return done

    def total_bytes(self) -> float:
        """Bytes that crossed any egress link (each flow counted once)."""
        return sum(link.bytes_transferred for link in self._egress.values())
