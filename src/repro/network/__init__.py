"""Network substrate: per-node full-duplex links and point-to-point transfers.

Shuffle fetches and replicated DFS writes flow through this package.  Each
node owns an egress and an ingress link modelled as fair-share resources; a
transfer occupies both its source's egress and its destination's ingress and
completes when the slower side finishes (the standard bottleneck-link fluid
approximation).
"""

from repro.network.fabric import NetworkFabric, NetworkLink

__all__ = ["NetworkFabric", "NetworkLink"]
