"""WordCount: the canonical micro workload (used by the quickstart example).

Map-side combining shrinks the shuffle dramatically (word frequencies are
heavy-tailed), making this a read-dominated two-stage job.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class WordCount(Workload):
    name = "wordcount"
    category = "micro"
    input_size = 32.0 * GiB
    paper_io_activity = 0.0  # not part of the paper's Table 2

    def __init__(self, scale: float = 1.0,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        self.num_partitions = num_partitions
        self.input_path = "/hibench/wordcount/input"
        self.output_path = "/hibench/wordcount/output"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 8.0)

    def prepare_small(self, ctx: SparkContext, text: Optional[str] = None) -> None:
        if text is None:
            text = (
                "the quick brown fox jumps over the lazy dog "
                "the fox is quick and the dog is lazy"
            )
        ctx.write_text_file(self.input_path, text.split())

    def execute(self, ctx: SparkContext):
        words = ctx.text_file(self.input_path, self.num_partitions)
        pairs = words.map(lambda w: (w, 1), cpu_per_byte=4.0e-8, bytes_factor=1.1)
        counts = pairs.reduce_by_key(
            lambda a, b: a + b,
            num_partitions=self.num_partitions,
            map_combine_factor=0.05,  # heavy-tailed words combine map-side
            reduce_factor=0.5,
        )
        counts.save_as_text_file(self.output_path)
        return self.output_path

    def collect_small_counts(self, ctx: SparkContext):
        """Run the small variant and return {word: count} (for tests)."""
        self.prepare_small(ctx)
        words = ctx.text_file(self.input_path, self.num_partitions)
        pairs = words.map(lambda w: (w, 1))
        counts = pairs.reduce_by_key(lambda a, b: a + b, self.num_partitions)
        return dict(counts.collect())
