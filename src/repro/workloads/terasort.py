"""Terasort: the paper's headline micro benchmark (Table 3: 120 GiB).

Three stages, all I/O-marked (paper section 4):

0. **Sampling scan** -- the RangePartitioner's sketch job reads the whole
   input to sample keys (light CPU, ~6% in Fig. 1).
1. **Map + shuffle write** -- reads the input again, partitions records into
   ranges, spills the full dataset to local disks (~15% CPU).
2. **Shuffle read + sort + output write** -- fetches, sorts, and writes the
   sorted dataset back to the DFS (~9% CPU).

Paper results on 4 HDD nodes: best static threads 4/8/8, static BestFit
-47.5% runtime, dynamic -34.4% with per-stage totals 14/32/34 of 128.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload

#: Terasort records are 100 bytes: a 10-byte key and a 90-byte payload.
RECORD_BYTES = 100
KEY_BYTES = 10


def parse_record(line: str):
    return (line[:KEY_BYTES], line[KEY_BYTES:])


class Terasort(Workload):
    name = "terasort"
    category = "micro"
    input_size = 111.75 * GiB  # Table 2
    paper_io_activity = 429.35 * GiB

    #: The evaluation runs use the round Table 3 size.
    RUN_SIZE = 120.0 * GiB

    def __init__(self, scale: float = 1.0,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        self.num_partitions = num_partitions
        self.input_path = "/hibench/terasort/input"
        self.output_path = "/hibench/terasort/output"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.RUN_SIZE * self.scale
        ctx.register_synthetic_file(
            self.input_path, size, num_records=size / RECORD_BYTES
        )

    def prepare_small(self, ctx: SparkContext, num_records: int = 400) -> None:
        rng = ctx.streams.stream("terasort-datagen")
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        lines = [
            "".join(rng.choice(alphabet) for _ in range(KEY_BYTES)) + "x" * 90
            for _ in range(num_records)
        ]
        ctx.write_text_file(self.input_path, lines)

    def execute(self, ctx: SparkContext):
        lines = ctx.text_file(self.input_path, self.num_partitions)
        # Parsing splits each line into (key, value); sizes are unchanged and
        # the per-byte CPU is the cheap split (the scan lands in the paper's
        # ~6% CPU band at 4 threads).
        pairs = lines.map(parse_record, cpu_per_byte=5e-9)
        ordered = pairs.sort_by_key(lines.num_partitions)
        ordered.save_as_text_file(self.output_path)
        return self.output_path
