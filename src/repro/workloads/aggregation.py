"""Aggregation: HiBench's SQL GROUP-BY workload (Table 3: bigdata).

Two stages (paper Fig. 8c):

0. **Scan + partial aggregation** -- reads ``uservisits``, extracts the
   grouping key and partially aggregates map-side.  This stage is
   compute-heavy (~68% CPU, Fig. 1 / section 4 L3), so *no* static thread
   reduction helps (Fig. 4a: the default is best) -- reading fewer bytes per
   second is never the bottleneck.
1. **Final aggregation + save** -- merges partial sums and writes the
   result (I/O-marked via ``saveAsTextFile``).

The dynamic solution leaves stage 0 at full threads (the hill-climb reaches
``cmax`` because no I/O congestion appears) and tunes stage 1, recovering
the paper's modest 6.8%.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


def parse_visit(line: str):
    fields = line.split(",")
    return (fields[0], float(fields[2]))


class Aggregation(Workload):
    name = "aggregation"
    category = "sql"
    input_size = 17.87 * GiB  # Table 2
    paper_io_activity = 37.44 * GiB

    def __init__(self, scale: float = 1.0,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        self.num_partitions = num_partitions
        self.input_path = "/hibench/aggregation/uservisits"
        self.output_path = "/hibench/aggregation/output"

    def _partitions(self, ctx: SparkContext) -> int:
        if self.num_partitions is not None:
            return self.num_partitions
        return max(ctx.default_parallelism,
                   int(ctx.default_parallelism * 16 * self.scale))

    def _scan_partitions(self, ctx: SparkContext) -> int:
        # Hive-on-Spark scans with very fine tasks (seconds each); the
        # adaptive climb costs a fixed number of task *waves*, so fine tasks
        # keep its overhead marginal on this compute-bound stage.
        if self.num_partitions is not None:
            return self.num_partitions
        return max(ctx.default_parallelism,
                   int(ctx.default_parallelism * 256 * self.scale))

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        # ~150 bytes per uservisits row.
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 150.0)

    def prepare_small(self, ctx: SparkContext) -> None:
        rows = []
        for i in range(240):
            key = f"1.2.3.{i % 6}"
            rows.append(f"{key},2019-01-01,{float(i % 10)}")
        ctx.write_text_file(self.input_path, rows)

    def execute(self, ctx: SparkContext):
        partitions = self._partitions(ctx)
        lines = ctx.text_file(self.input_path, self._scan_partitions(ctx))
        # Hive-style row parsing + expression evaluation dominate: the scan
        # stage sits in the paper's ~68% CPU band at the default thread
        # count, which is exactly why reducing its thread count only removes
        # compute parallelism and never wins (Fig. 4a / limitation L3).
        visits = lines.map(parse_visit, cpu_per_byte=2.2e-6, bytes_factor=0.9)
        sums = visits.reduce_by_key(
            lambda a, b: a + b,
            partitions,
            map_combine_factor=0.35,  # map-side partial aggregation
            reduce_factor=0.4,
            cpu_per_byte=4.0e-8,
        )
        sums.save_as_text_file(self.output_path, bytes_factor=1.0)
        return self.output_path
