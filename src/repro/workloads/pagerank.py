"""PageRank: the paper's iterative web-search workload (Table 3: gigantic).

Structure (6 stages on the paper's Fig. 8b, 4 ranking iterations):

0. **Ingest** -- read the edge list, hash-partition it for ``groupByKey``
   (I/O-marked: contains ``textFile``).
1-4. **Iterations** -- each iteration joins the cached ``links`` with the
   current ranks (narrow, because both sides share the partitioner), spreads
   contributions along edges, and ``reduceByKey``-s them into new ranks --
   one *shuffle* stage per iteration.  These stages read and write tens of
   GiB through the disks (the paper: 65.5 GB read / 59.4 GB written) but are
   **not** I/O-marked: that is limitation L2, the reason the static solution
   only wins 16% on PageRank while the dynamic one wins 54%.
5. **Output** -- save the final ranks (I/O-marked).

The damping-factor update matches the classic Spark example, so the small
materialised variant converges to real PageRank values tests can verify.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload

DAMPING = 0.85


def parse_edge(line: str):
    src, dst = line.split()
    return (src, dst)


def spread_contributions(pair):
    """For (key, (neighbours, rank)): emit rank/out-degree per neighbour."""
    neighbours, rank = pair
    share = rank / len(neighbours)
    return [(dst, share) for dst in neighbours]


class PageRank(Workload):
    name = "pagerank"
    category = "websearch"
    input_size = 18.56 * GiB  # Table 2
    paper_io_activity = 128.3 * GiB

    def __init__(self, scale: float = 1.0, iterations: int = 4,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.num_partitions = num_partitions
        self.input_path = "/hibench/pagerank/edges"
        self.output_path = "/hibench/pagerank/ranks"

    def _partitions(self, ctx: SparkContext) -> int:
        if self.num_partitions is not None:
            return self.num_partitions
        # HiBench-style over-partitioning, scaled with the input size.
        return max(ctx.default_parallelism,
                   int(ctx.default_parallelism * 4 * self.scale))

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        # ~86 bytes per edge line (two URL-ish tokens), as in HiBench data.
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 86.0)

    def prepare_small(self, ctx: SparkContext, num_pages: int = 40,
                      seed_stream: str = "pagerank-datagen") -> None:
        rng = ctx.streams.stream(seed_stream)
        lines = []
        for src in range(num_pages):
            degree = 1 + rng.randrange(4)
            targets = rng.sample(range(num_pages), degree)
            lines.extend(f"p{src} p{dst}" for dst in targets)
        ctx.write_text_file(self.input_path, lines)

    def execute(self, ctx: SparkContext):
        partitions = self._partitions(ctx)
        lines = ctx.text_file(self.input_path, partitions)
        # Edge parsing is string-heavy: the ingest stage sits in the paper's
        # ~60% CPU band at the default thread count (Fig. 1).
        edges = lines.map(parse_edge, cpu_per_byte=5.5e-8, bytes_factor=0.9)
        links = edges.group_by_key(
            partitions,
            reduce_factor=0.95,
            cpu_per_byte=3.0e-8,
        ).cache()
        ranks = links.map_values(lambda _neighbours: 1.0,
                                 bytes_factor=0.05, cpu_per_byte=1e-9)
        for _iteration in range(self.iterations):
            joined = links.join(ranks, partitions, cpu_per_byte=1.5e-8)
            contribs = joined.flat_map(
                lambda kv: spread_contributions(kv[1]),
                fanout=1.0,
                bytes_factor=0.85,
                cpu_per_byte=1.5e-8,
            )
            ranks = contribs.reduce_by_key(
                lambda a, b: a + b,
                partitions,
                reduce_factor=0.13,
                cpu_per_byte=1.0e-8,
            ).map_values(lambda total: (1.0 - DAMPING) + DAMPING * total,
                         cpu_per_byte=1e-9)
        ranks.save_as_text_file(self.output_path, bytes_factor=3.0)
        return self.output_path

    def collect_small_ranks(self, ctx: SparkContext):
        """Run the small variant and return the rank vector (for tests)."""
        self.prepare_small(ctx)
        partitions = self._partitions(ctx)
        lines = ctx.text_file(self.input_path, partitions)
        edges = lines.map(parse_edge)
        links = edges.group_by_key(partitions).cache()
        ranks = links.map_values(lambda _neighbours: 1.0)
        for _iteration in range(self.iterations):
            joined = links.join(ranks, partitions)
            contribs = joined.flat_map(lambda kv: spread_contributions(kv[1]))
            ranks = contribs.reduce_by_key(lambda a, b: a + b, partitions).map_values(
                lambda total: (1.0 - DAMPING) + DAMPING * total
            )
        return dict(ranks.collect())
