"""Workload base class and run results.

A :class:`Workload` is an RDD program plus its paper-calibrated data
volumes: ``prepare`` materialises input in the simulated DFS, ``execute``
builds and runs the DAG, and :meth:`Workload.run` wraps both into a
:class:`WorkloadRun` -- runtime, per-stage records, and cluster I/O totals,
exactly the fields the harness summarises into sweep journals and the
service layer's runtime oracle.  ``scale`` multiplies every byte count so
tests and thousand-job service scenarios stay cheap while ratios (and
therefore thread-count optima) are preserved.  Subclasses also provide a
small *materialised* mode (``run_small``) whose outputs are semantically
checkable (Terasort really sorts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.engine.context import SparkContext
from repro.engine.metrics import StageRecord

GiB = 1024.0**3
MiB = 1024.0**2


@dataclass
class WorkloadRun:
    """Everything a harness needs from one completed workload run."""

    workload: str
    ctx: SparkContext
    result: Any = None

    @property
    def runtime(self) -> float:
        return self.ctx.total_runtime

    @property
    def stages(self) -> List[StageRecord]:
        return self.ctx.recorder.stages

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_durations(self) -> List[float]:
        return [stage.duration for stage in self.stages]

    @property
    def cluster_io_bytes(self) -> float:
        """All bytes moved through cluster disks (Table 2's I/O activity)."""
        for node in self.ctx.cluster.nodes:
            node.disk.sync()
        return self.ctx.cluster.total_disk_bytes()


class Workload:
    """One benchmark application.

    Subclasses define the paper-calibrated synthetic run (``prepare`` +
    ``execute``) and, where semantics are checkable, a small materialised
    variant (``prepare_small`` + ``execute``) whose output tests can verify.
    """

    #: registry name, HiBench category, and paper-reported volumes
    name: str = ""
    category: str = ""
    input_size: float = 0.0  # bytes (Table 2)
    paper_io_activity: float = 0.0  # bytes (Table 2)

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    @property
    def scaled_input_size(self) -> float:
        return self.input_size * self.scale

    @property
    def paper_amplification(self) -> float:
        """Paper Table 2: I/O activity relative to input size."""
        return self.paper_io_activity / self.input_size

    # -- synthetic (benchmark-scale) mode -----------------------------------

    def prepare(self, ctx: SparkContext) -> None:
        """Register this workload's synthetic input datasets."""
        raise NotImplementedError

    def execute(self, ctx: SparkContext) -> Any:
        """Build the RDD program and run its action(s)."""
        raise NotImplementedError

    def run(self, ctx: SparkContext) -> WorkloadRun:
        self.prepare(ctx)
        result = self.execute(ctx)
        return WorkloadRun(workload=self.name, ctx=ctx, result=result)

    # -- materialised (small, correctness-checkable) mode ----------------------

    def prepare_small(self, ctx: SparkContext) -> None:
        """Register a small materialised input; override where supported."""
        raise NotImplementedError(
            f"{self.name} does not provide a materialised variant"
        )

    def run_small(self, ctx: SparkContext) -> WorkloadRun:
        self.prepare_small(ctx)
        result = self.execute(ctx)
        return WorkloadRun(workload=self.name, ctx=ctx, result=result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scale={self.scale})"
