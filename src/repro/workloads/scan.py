"""Scan: HiBench's SQL SELECT-* workload (Table 2 only).

A single map-only job: read ``uservisits``, project columns, and write the
result back to the DFS with HDFS-style 3x replication -- which is how a
"scan" ends up moving 6.3x its input through the disks (Table 2: +530%).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class Scan(Workload):
    name = "scan"
    category = "sql"
    input_size = 17.87 * GiB  # Table 2
    paper_io_activity = 112.56 * GiB

    def __init__(self, scale: float = 1.0,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        self.num_partitions = num_partitions
        self.input_path = "/hibench/scan/uservisits"
        self.output_path = "/hibench/scan/output"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 150.0)
        # HiBench writes scan output through Hive with replication 3.
        ctx.conf.set("repro.output.replication", 3)

    def prepare_small(self, ctx: SparkContext) -> None:
        ctx.write_text_file(
            self.input_path,
            [f"url{i},2019-01-01,{float(i)}" for i in range(100)],
        )

    def execute(self, ctx: SparkContext):
        lines = ctx.text_file(self.input_path, self.num_partitions)
        projected = lines.map(
            lambda line: line, cpu_per_byte=3.0e-8, bytes_factor=1.55,
        )
        projected.save_as_text_file(self.output_path)
        return self.output_path
