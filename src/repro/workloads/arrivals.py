"""Workload-arrival plans: who submits which jobs, and when.

The single-job harness answers "how fast does one run finish"; the
multi-tenant service layer (SERVICE.md) asks what happens when a *stream*
of heterogeneous jobs from competing tenants lands on one shared cluster.
This module is the workload-arrival half of that layer: a declarative,
seeded :class:`ArrivalPlan` (JSON wire format ``repro.arrivals/1``) lists
tenants, each with an arrival process -- a seeded Poisson process or an
explicit trace of submission times -- and a weighted *job mix* drawn from
the existing workload catalog.

``ArrivalPlan.generate()`` expands the plan into a deterministic, sorted
sequence of :class:`JobArrival`\\ s: the same plan and seed produce the
same arrival sequence byte for byte, on any platform (per-tenant RNG
streams are derived SHA-256-style exactly like
:class:`repro.simulation.randomness.RandomStreams`, so adding a tenant
never perturbs another tenant's draws).  Scheduling the resulting jobs is
:mod:`repro.cluster.scheduler`'s business; running them through the engine
is :mod:`repro.harness.service`'s.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.simulation.randomness import RandomStreams
from repro.workloads.catalog import WORKLOADS

#: Wire-format marker checked on load; bump on incompatible change.
PLAN_SCHEMA = "repro.arrivals/1"

#: Policy spec kinds a plan may carry (the picklable subset of the harness
#: vocabulary -- callables and per-stage bestfit dicts cannot live in JSON).
_SCALAR_POLICIES = ("default", "dynamic")
_PARAMETRIC_POLICIES = ("static", "fixed")


class ArrivalPlanError(ValueError):
    """An arrival plan failed validation or could not be parsed."""


PolicyJson = Union[str, Sequence[Any]]


def _validate_policy(policy: Any) -> Union[str, Tuple[str, int]]:
    """Normalise a plan policy spec to the harness vocabulary."""
    if isinstance(policy, str):
        if policy not in _SCALAR_POLICIES:
            raise ArrivalPlanError(
                f"unknown policy {policy!r}; expected one of "
                f"{_SCALAR_POLICIES} or [kind, threads]"
            )
        return policy
    if isinstance(policy, (list, tuple)) and len(policy) == 2:
        kind, arg = policy
        if kind in _PARAMETRIC_POLICIES:
            try:
                threads = int(arg)
            except (TypeError, ValueError):
                raise ArrivalPlanError(
                    f"policy {kind!r} needs an integer thread count, "
                    f"got {arg!r}"
                ) from None
            if threads < 1:
                raise ArrivalPlanError(
                    f"policy thread count must be >= 1, got {threads}"
                )
            return (kind, threads)
    raise ArrivalPlanError(
        f"malformed policy spec {policy!r}; expected 'default', 'dynamic', "
        f"or ['static'|'fixed', threads]"
    )


@dataclass(frozen=True)
class JobTemplate:
    """One entry of a tenant's job mix.

    Jobs stamped from the same template are identical replicas (the inner
    simulation is deterministic), so service-level variation comes from
    *arrivals and contention* -- the classic queueing-theory framing -- and
    a thousand-job scenario costs one engine run per distinct template.
    ``seed`` seeds the inner run's cluster exactly like ``repro run
    --seed``.
    """

    workload: str
    scale: float = 1.0
    policy: Union[str, Tuple[str, int]] = "default"
    conf: Dict[str, Any] = field(default_factory=dict)
    seed: int = 42
    weight: float = 1.0
    name: Optional[str] = None

    def validate(self) -> None:
        if self.workload not in WORKLOADS:
            raise ArrivalPlanError(
                f"unknown workload {self.workload!r}; known: "
                f"{', '.join(sorted(WORKLOADS))}"
            )
        if self.scale <= 0:
            raise ArrivalPlanError(f"scale must be positive, got {self.scale}")
        if self.weight <= 0:
            raise ArrivalPlanError(
                f"mix weight must be positive, got {self.weight}"
            )
        _validate_policy(self.policy)

    @property
    def label(self) -> str:
        return self.name or self.workload

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"workload": self.workload}
        if self.scale != 1.0:
            doc["scale"] = self.scale
        if self.policy != "default":
            doc["policy"] = (
                list(self.policy)
                if isinstance(self.policy, tuple) else self.policy
            )
        if self.conf:
            doc["conf"] = dict(self.conf)
        if self.seed != 42:
            doc["seed"] = self.seed
        if self.weight != 1.0:
            doc["weight"] = self.weight
        if self.name is not None:
            doc["name"] = self.name
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobTemplate":
        _reject_unknown(doc, {"workload", "scale", "policy", "conf", "seed",
                              "weight", "name"}, "job template")
        if "workload" not in doc:
            raise ArrivalPlanError("job template missing 'workload'")
        policy = doc.get("policy", "default")
        template = cls(
            workload=doc["workload"],
            scale=float(doc.get("scale", 1.0)),
            policy=_validate_policy(policy),
            conf=dict(doc.get("conf", {})),
            seed=int(doc.get("seed", 42)),
            weight=float(doc.get("weight", 1.0)),
            name=doc.get("name"),
        )
        template.validate()
        return template


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its fair-share weight, slot demand, arrivals, and mix.

    ``slots`` is the number of cluster nodes every one of this tenant's
    jobs runs on -- executors are the unit of allocation *across* jobs
    (the Elasecutor framing), so a job holds ``slots`` nodes from start to
    finish.  ``weight`` only matters under the weighted-fair discipline.
    """

    name: str
    mix: Tuple[JobTemplate, ...]
    weight: float = 1.0
    slots: int = 1
    #: Arrival process: ``("poisson", rate, start, end)`` with ``end=None``
    #: meaning the plan horizon, or ``("trace", times)``.
    process: Tuple[Any, ...] = ("trace", ())

    def validate(self, horizon: Optional[float]) -> None:
        if not self.name:
            raise ArrivalPlanError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ArrivalPlanError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {self.weight}"
            )
        if self.slots < 1:
            raise ArrivalPlanError(
                f"tenant {self.name!r}: slots must be >= 1, got {self.slots}"
            )
        if not self.mix:
            raise ArrivalPlanError(
                f"tenant {self.name!r}: job mix must be non-empty"
            )
        for template in self.mix:
            template.validate()
        kind = self.process[0]
        if kind == "poisson":
            _kind, rate, start, end = self.process
            if rate <= 0:
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: poisson rate must be positive, "
                    f"got {rate}"
                )
            if start < 0:
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: start must be >= 0, got {start}"
                )
            if end is None and horizon is None:
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: poisson arrivals need an 'end' "
                    f"or a plan horizon"
                )
            if end is not None and end < start:
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: end {end} before start {start}"
                )
        elif kind == "trace":
            times = self.process[1]
            if any(t < 0 for t in times):
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: trace times must be >= 0"
                )
            if list(times) != sorted(times):
                raise ArrivalPlanError(
                    f"tenant {self.name!r}: trace times must be sorted"
                )
        else:
            raise ArrivalPlanError(
                f"tenant {self.name!r}: unknown arrival process {kind!r} "
                f"(expected 'poisson' or 'trace')"
            )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"name": self.name}
        if self.weight != 1.0:
            doc["weight"] = self.weight
        if self.slots != 1:
            doc["slots"] = self.slots
        kind = self.process[0]
        if kind == "poisson":
            _kind, rate, start, end = self.process
            arrivals: Dict[str, Any] = {"process": "poisson", "rate": rate}
            if start:
                arrivals["start"] = start
            if end is not None:
                arrivals["end"] = end
            doc["arrivals"] = arrivals
        else:
            doc["arrivals"] = {"process": "trace",
                               "times": list(self.process[1])}
        doc["mix"] = [template.to_dict() for template in self.mix]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TenantSpec":
        _reject_unknown(doc, {"name", "weight", "slots", "arrivals", "mix"},
                        "tenant")
        if "name" not in doc:
            raise ArrivalPlanError("tenant missing 'name'")
        if "arrivals" not in doc:
            raise ArrivalPlanError(f"tenant {doc['name']!r} missing 'arrivals'")
        arrivals = doc["arrivals"]
        _reject_unknown(arrivals, {"process", "rate", "start", "end", "times"},
                        f"tenant {doc['name']!r} arrivals")
        kind = arrivals.get("process")
        if kind == "poisson":
            process: Tuple[Any, ...] = (
                "poisson",
                float(arrivals.get("rate", 0.0)),
                float(arrivals.get("start", 0.0)),
                (None if arrivals.get("end") is None
                 else float(arrivals["end"])),
            )
        elif kind == "trace":
            process = ("trace",
                       tuple(float(t) for t in arrivals.get("times", ())))
        else:
            raise ArrivalPlanError(
                f"tenant {doc['name']!r}: unknown arrival process {kind!r}"
            )
        return cls(
            name=doc["name"],
            weight=float(doc.get("weight", 1.0)),
            slots=int(doc.get("slots", 1)),
            process=process,
            mix=tuple(JobTemplate.from_dict(t) for t in doc.get("mix", ())),
        )


@dataclass(frozen=True)
class JobArrival:
    """One concrete job submission expanded from a plan."""

    job_id: str
    tenant: str
    time: float
    template: JobTemplate
    slots: int
    tenant_weight: float


@dataclass(frozen=True)
class ArrivalPlan:
    """A versioned, seeded multi-tenant arrival plan (``repro.arrivals/1``)."""

    tenants: Tuple[TenantSpec, ...]
    seed: int = 0
    #: Default end time (simulated seconds) for Poisson tenants without an
    #: explicit ``end``; trace tenants ignore it.
    horizon: Optional[float] = None

    def validate(self) -> None:
        if self.horizon is not None and self.horizon <= 0:
            raise ArrivalPlanError(
                f"horizon must be positive, got {self.horizon}"
            )
        if not self.tenants:
            raise ArrivalPlanError("plan must declare at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ArrivalPlanError(f"duplicate tenant names in {names}")
        for tenant in self.tenants:
            tenant.validate(self.horizon)

    # -- expansion ---------------------------------------------------------

    def generate(self) -> List[JobArrival]:
        """Expand into the deterministic, time-sorted job sequence.

        Each tenant draws inter-arrival gaps and mix choices from its own
        named RNG stream (``arrivals.<tenant>``), so the sequence is stable
        under tenant addition/removal; ties are broken by tenant name, then
        per-tenant submission order.  Job ids are ``j0000``, ``j0001``, ...
        in final order.
        """
        self.validate()
        streams = RandomStreams(self.seed)
        pending: List[Tuple[float, str, int, JobTemplate]] = []
        for tenant in self.tenants:
            rng = streams.stream(f"arrivals.{tenant.name}")
            times: List[float] = []
            if tenant.process[0] == "poisson":
                _kind, rate, start, end = tenant.process
                if end is None:
                    end = self.horizon
                t = start
                while True:
                    t += rng.expovariate(rate)
                    if t > end:
                        break
                    times.append(t)
            else:
                times = list(tenant.process[1])
            weights = [template.weight for template in tenant.mix]
            total = sum(weights)
            for index, time in enumerate(times):
                draw = rng.random() * total
                cumulative = 0.0
                chosen = tenant.mix[-1]
                for template, weight in zip(tenant.mix, weights):
                    cumulative += weight
                    if draw < cumulative:
                        chosen = template
                        break
                pending.append((time, tenant.name, index, chosen))
        pending.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        by_name = {tenant.name: tenant for tenant in self.tenants}
        return [
            JobArrival(
                job_id=f"j{index:04d}",
                tenant=name,
                time=time,
                template=template,
                slots=by_name[name].slots,
                tenant_weight=by_name[name].weight,
            )
            for index, (time, name, _seq, template) in enumerate(pending)
        ]

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": PLAN_SCHEMA, "seed": self.seed}
        if self.horizon is not None:
            doc["horizon"] = self.horizon
        doc["tenants"] = [tenant.to_dict() for tenant in self.tenants]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ArrivalPlan":
        if not isinstance(doc, dict):
            raise ArrivalPlanError(f"plan must be a JSON object, got {type(doc).__name__}")
        schema = doc.get("schema")
        if schema != PLAN_SCHEMA:
            raise ArrivalPlanError(
                f"unsupported schema {schema!r} (expected {PLAN_SCHEMA!r})"
            )
        _reject_unknown(doc, {"schema", "seed", "horizon", "tenants"}, "plan")
        plan = cls(
            seed=int(doc.get("seed", 0)),
            horizon=(None if doc.get("horizon") is None
                     else float(doc["horizon"])),
            tenants=tuple(TenantSpec.from_dict(t)
                          for t in doc.get("tenants", ())),
        )
        plan.validate()
        return plan

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArrivalPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArrivalPlanError(f"not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def save(self, path: str) -> None:
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ArrivalPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _reject_unknown(doc: Dict[str, Any], allowed: set, what: str) -> None:
    unknown = set(doc) - allowed
    if unknown:
        raise ArrivalPlanError(
            f"unknown {what} field(s): {', '.join(sorted(unknown))}"
        )


# -- canned plans (CLI `repro arrivals generate`, CI, examples) -------------


def poisson_plan(
    tenants: int = 2,
    rate: float = 0.02,
    horizon: float = 3600.0,
    workloads: Sequence[str] = ("terasort", "wordcount"),
    scale: float = 0.05,
    slots: int = 1,
    policy: Union[str, Tuple[str, int]] = "default",
    seed: int = 0,
    job_seed: int = 42,
) -> ArrivalPlan:
    """``tenants`` identical Poisson tenants sharing one mix of ``workloads``.

    ``rate`` is per-tenant jobs per simulated second over ``[0, horizon]``;
    expected job count is ``tenants * rate * horizon``.
    """
    mix = tuple(
        JobTemplate(workload=name, scale=scale, policy=policy, seed=job_seed)
        for name in workloads
    )
    return ArrivalPlan(
        seed=seed,
        horizon=horizon,
        tenants=tuple(
            TenantSpec(
                name=f"tenant{index}",
                slots=slots,
                process=("poisson", rate, 0.0, None),
                mix=mix,
            )
            for index in range(tenants)
        ),
    )


def single_job_plan(
    workload: str = "terasort",
    scale: float = 1.0,
    slots: int = 4,
    policy: Union[str, Tuple[str, int]] = "default",
    seed: int = 0,
    job_seed: int = 42,
) -> ArrivalPlan:
    """One tenant submitting one job at t=0.

    ``repro serve`` on this plan is the degenerate single-job service: with
    ``--events`` it writes an event log byte-identical to the equivalent
    ``repro run`` (the CI serve job ``cmp``s it against the golden log).
    """
    return ArrivalPlan(
        seed=seed,
        tenants=(
            TenantSpec(
                name="tenant0",
                slots=slots,
                process=("trace", (0.0,)),
                mix=(JobTemplate(workload=workload, scale=scale,
                                 policy=policy, seed=job_seed),),
            ),
        ),
    )


#: name -> builder, mirroring ``repro.faults.plan.CANNED_PLANS``.
CANNED_PLANS = {
    "poisson": poisson_plan,
    "single": single_job_plan,
}
