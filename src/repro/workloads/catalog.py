"""Workload registry: the paper's Tables 2 and 3 in code.

:data:`WORKLOADS` is the single name -> class map behind every surface
that accepts a workload name -- the CLI's positional arguments, sweep and
bench configs, and the job mixes of ``repro.arrivals/1`` plans
(:mod:`repro.workloads.arrivals` validates against it).  ``TABLE2_WORKLOADS``
and ``TABLE3_WORKLOADS`` name the paper's I/O-amplification and end-to-end
evaluation sets respectively.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.aggregation import Aggregation
from repro.workloads.base import Workload
from repro.workloads.bayes import Bayes
from repro.workloads.join import Join
from repro.workloads.lda import LDA
from repro.workloads.nweight import NWeight
from repro.workloads.pagerank import PageRank
from repro.workloads.scan import Scan
from repro.workloads.svm import SVM
from repro.workloads.terasort import Terasort
from repro.workloads.wordcount import WordCount

#: name -> workload class; the nine Table 2 rows plus WordCount.
WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        Aggregation,
        Bayes,
        Join,
        LDA,
        NWeight,
        PageRank,
        Scan,
        SVM,
        Terasort,
        WordCount,
    )
}

#: The nine applications of the paper's Table 2, in its row order.
TABLE2_WORKLOADS: List[str] = [
    "aggregation",
    "bayes",
    "join",
    "lda",
    "nweight",
    "pagerank",
    "scan",
    "terasort",
    "svm",
]

#: The four end-to-end evaluation applications (Table 3).
TABLE3_WORKLOADS: List[str] = ["terasort", "join", "aggregation", "pagerank"]


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a workload by its registry name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        ) from None
    return cls(**kwargs)
