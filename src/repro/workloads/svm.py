"""SVM training (Table 2: 107.29 GiB input, +90% I/O activity).

The training set is read once and cached, but it exceeds executor memory, so
roughly half of it spills to local disk and is re-read by the first gradient
pass; subsequent passes aggregate small gradient vectors.  Net effect:
~1.9x the input moves through the disks, the paper's +90%.
"""

from __future__ import annotations

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class SVM(Workload):
    name = "svm"
    category = "ml"
    input_size = 107.29 * GiB  # Table 2
    paper_io_activity = 203.92 * GiB

    def __init__(self, scale: float = 1.0, iterations: int = 3) -> None:
        super().__init__(scale)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.input_path = "/hibench/svm/samples"
        self.output_path = "/hibench/svm/model"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 1000.0)

    def execute(self, ctx: SparkContext):
        samples = ctx.text_file(self.input_path)
        vectors = samples.map(
            lambda s: (hash(s), s), cpu_per_byte=7.0e-8, bytes_factor=0.9,
        )
        # The cache-overflow spill + re-read shows up as one repartitioning
        # pass over roughly half the vectorised data.
        partitioned = vectors.map_values(
            lambda v: v, bytes_factor=0.45, cpu_per_byte=2.0e-8,
        ).reduce_by_key(lambda a, b: a, reduce_factor=1.0, cpu_per_byte=3.0e-8)
        gradients = partitioned
        for _iteration in range(self.iterations):
            gradients = gradients.map_values(
                lambda v: v, bytes_factor=0.02, cpu_per_byte=9.0e-8,
            ).reduce_by_key(
                lambda a, b: a,
                reduce_factor=1.0,
                cpu_per_byte=2.0e-8,
            )
        gradients.save_as_text_file(self.output_path, bytes_factor=0.1)
        return self.output_path
