"""HiBench-style workloads with the paper's stage structures and I/O volumes.

The paper evaluates four applications end-to-end (Table 3: Terasort, Join,
Aggregation, PageRank) and measures the I/O amplification of nine (Table 2).
Every one of them is implemented here as an RDD program whose synthetic data
volumes are calibrated to the paper's reported input sizes and I/O activity;
the four evaluation workloads additionally reproduce the paper's per-stage
behaviour (stage counts, CPU bands from Fig. 1, thread-count optima).

Each workload also has a *small materialised* mode used by tests and
examples to validate semantics end-to-end (Terasort really sorts, PageRank
really converges, Join really joins).
"""

from repro.workloads.arrivals import (
    ArrivalPlan,
    ArrivalPlanError,
    JobArrival,
    JobTemplate,
    TenantSpec,
)
from repro.workloads.base import Workload, WorkloadRun
from repro.workloads.catalog import WORKLOADS, get_workload, workload_names
from repro.workloads.terasort import Terasort
from repro.workloads.pagerank import PageRank
from repro.workloads.aggregation import Aggregation
from repro.workloads.join import Join
from repro.workloads.scan import Scan
from repro.workloads.wordcount import WordCount
from repro.workloads.bayes import Bayes
from repro.workloads.lda import LDA
from repro.workloads.nweight import NWeight
from repro.workloads.svm import SVM

__all__ = [
    "Aggregation",
    "ArrivalPlan",
    "ArrivalPlanError",
    "Bayes",
    "JobArrival",
    "JobTemplate",
    "Join",
    "LDA",
    "NWeight",
    "PageRank",
    "SVM",
    "Scan",
    "TenantSpec",
    "Terasort",
    "WORKLOADS",
    "WordCount",
    "Workload",
    "WorkloadRun",
    "get_workload",
    "workload_names",
]
