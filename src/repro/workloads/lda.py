"""LDA topic modelling (Table 2: 0.63 GiB input, +508% I/O activity).

Gibbs-style iterations repeatedly shuffle document-topic assignments that
are comparable in size to the input corpus, producing the >5x amplification
the paper measures.
"""

from __future__ import annotations

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class LDA(Workload):
    name = "lda"
    category = "ml"
    input_size = 0.63 * GiB  # Table 2
    paper_io_activity = 3.83 * GiB

    def __init__(self, scale: float = 1.0, iterations: int = 5) -> None:
        super().__init__(scale)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.input_path = "/hibench/lda/corpus"
        self.output_path = "/hibench/lda/topics"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 400.0)

    def execute(self, ctx: SparkContext):
        corpus = ctx.text_file(self.input_path)
        state = corpus.map(
            lambda doc: (hash(doc), doc), cpu_per_byte=1.2e-7, bytes_factor=1.0,
        )
        for _iteration in range(self.iterations):
            # Each sweep shuffles ~55% of the model state and rebuilds it to
            # constant size (0.55 * 1.82 ~= 1), keeping per-iteration volume
            # flat as in Gibbs sampling over a fixed corpus.
            state = state.map_values(
                lambda d: d, cpu_per_byte=8.0e-8, bytes_factor=0.55,
            ).reduce_by_key(
                lambda a, b: a,
                reduce_factor=1.82,
                cpu_per_byte=6.0e-8,
            )
        state.save_as_text_file(self.output_path, bytes_factor=0.3)
        return self.output_path
