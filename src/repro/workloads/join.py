"""Join: HiBench's two-table SQL workload (Table 3: bigdata).

Three stages (paper Fig. 8d):

0. **Scan uservisits** -- the large table; parsing and predicate evaluation
   make it compute-bound (~46% CPU, section 4 L3), so the static solution
   does not help (Fig. 4b).
1. **Scan rankings** -- the small table.
2. **Join + save** -- co-groups both shuffles and writes the joined rows.

Join's I/O amplification is the smallest in Table 2 (+18%): the shuffled
and output volumes are small relative to the scanned input, which is why
the dynamic solution only recovers ~2.5% end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


def parse_visit(line: str):
    fields = line.split(",")
    return (fields[0], float(fields[2]))


def parse_ranking(line: str):
    fields = line.split(",")
    return (fields[0], int(fields[1]))


class Join(Workload):
    name = "join"
    category = "sql"
    input_size = 17.87 * GiB  # Table 2 (both tables)
    paper_io_activity = 21.06 * GiB

    VISITS_FRACTION = 0.84  # uservisits share of the combined input

    def __init__(self, scale: float = 1.0,
                 num_partitions: Optional[int] = None) -> None:
        super().__init__(scale)
        self.num_partitions = num_partitions
        self.visits_path = "/hibench/join/uservisits"
        self.rankings_path = "/hibench/join/rankings"
        self.output_path = "/hibench/join/output"

    def _partitions(self, ctx: SparkContext) -> int:
        if self.num_partitions is not None:
            return self.num_partitions
        return max(ctx.default_parallelism,
                   int(ctx.default_parallelism * 16 * self.scale))

    def _scan_partitions(self, ctx: SparkContext) -> int:
        # Hive-on-Spark scans the big fact table with very fine tasks
        # (seconds each); the adaptive climb costs a fixed number of task
        # *waves*, so fine tasks keep its overhead marginal on this
        # compute-bound stage.
        if self.num_partitions is not None:
            return self.num_partitions
        return max(ctx.default_parallelism,
                   int(ctx.default_parallelism * 256 * self.scale))

    def prepare(self, ctx: SparkContext) -> None:
        visits = self.scaled_input_size * self.VISITS_FRACTION
        rankings = self.scaled_input_size * (1.0 - self.VISITS_FRACTION)
        ctx.register_synthetic_file(self.visits_path, visits,
                                    num_records=visits / 150.0)
        ctx.register_synthetic_file(self.rankings_path, rankings,
                                    num_records=rankings / 60.0)

    def prepare_small(self, ctx: SparkContext) -> None:
        visits = [f"url{i % 8},2019-01-01,{float(i)}" for i in range(64)]
        rankings = [f"url{i},{i * 10}" for i in range(8)]
        ctx.write_text_file(self.visits_path, visits)
        ctx.write_text_file(self.rankings_path, rankings)

    def execute(self, ctx: SparkContext):
        partitions = self._partitions(ctx)
        # Predicate evaluation over the wide uservisits rows keeps the scan
        # in the paper's ~46% CPU band: compute-bound enough that the static
        # solution cannot help (Fig. 4b), unlike Terasort's 6%-CPU scans.
        visits = ctx.text_file(self.visits_path, self._scan_partitions(ctx)).map(
            parse_visit, cpu_per_byte=1.5e-6, bytes_factor=0.05,
        )
        rankings = ctx.text_file(self.rankings_path, partitions).map(
            parse_ranking, cpu_per_byte=1.5e-7, bytes_factor=0.6,
        )
        joined = visits.join(rankings, partitions, match_factor=1.0,
                             cpu_per_byte=4.0e-8)
        joined.save_as_text_file(self.output_path, bytes_factor=1.0)
        return self.output_path
