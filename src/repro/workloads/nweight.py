"""NWeight graph expansion (Table 2: 0.28 GiB input, +3553% I/O activity).

Computes n-hop neighbourhood weights; each hop multiplies the candidate-path
set, so intermediate shuffle volumes dwarf the tiny input -- the most
extreme amplification in the paper's Table 2 (a factor of ~37x).
"""

from __future__ import annotations

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class NWeight(Workload):
    name = "nweight"
    category = "graph"
    input_size = 0.28 * GiB  # Table 2
    paper_io_activity = 10.23 * GiB

    def __init__(self, scale: float = 1.0, hops: int = 3) -> None:
        super().__init__(scale)
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        self.hops = hops
        self.input_path = "/hibench/nweight/edges"
        self.output_path = "/hibench/nweight/weights"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 40.0)

    def execute(self, ctx: SparkContext):
        edges = ctx.text_file(self.input_path)
        paths = edges.map(
            lambda e: (e, 1.0), cpu_per_byte=8.0e-8, bytes_factor=1.2,
        )
        for _hop in range(self.hops):
            # Each hop joins candidate paths against the adjacency lists,
            # multiplying the path set before pruning back by weight.
            paths = paths.flat_map(
                lambda kv: [kv], fanout=3.2, bytes_factor=3.2,
                cpu_per_byte=6.0e-8,
            ).reduce_by_key(
                lambda a, b: a + b,
                map_combine_factor=0.85,
                reduce_factor=0.75,
                cpu_per_byte=5.0e-8,
            )
        paths.save_as_text_file(self.output_path, bytes_factor=0.4)
        return self.output_path
