"""Naive Bayes training (Table 2: 3.50 GiB input, +180% I/O activity).

Tokenise documents, shuffle term frequencies, then shuffle per-class
aggregates -- two shuffle passes over a token stream that is larger than
the compressed document input.
"""

from __future__ import annotations

from repro.engine.context import SparkContext
from repro.workloads.base import GiB, Workload


class Bayes(Workload):
    name = "bayes"
    category = "ml"
    input_size = 3.50 * GiB  # Table 2
    paper_io_activity = 9.80 * GiB

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)
        self.input_path = "/hibench/bayes/documents"
        self.output_path = "/hibench/bayes/model"

    def prepare(self, ctx: SparkContext) -> None:
        size = self.scaled_input_size
        ctx.register_synthetic_file(self.input_path, size, num_records=size / 500.0)

    def execute(self, ctx: SparkContext):
        docs = ctx.text_file(self.input_path)
        tokens = docs.flat_map(
            lambda d: d.split(), fanout=60.0, bytes_factor=1.15,
            cpu_per_byte=9.0e-8,
        )
        term_freq = tokens.map(lambda t: ((t, 0), 1), bytes_factor=1.0).reduce_by_key(
            lambda a, b: a + b,
            map_combine_factor=0.55,
            reduce_factor=0.45,
            cpu_per_byte=5.0e-8,
        )
        class_agg = term_freq.map(
            lambda kv: (kv[0][1], kv[1]), bytes_factor=0.9,
        ).reduce_by_key(
            lambda a, b: a + b,
            map_combine_factor=0.8,
            reduce_factor=0.3,
            cpu_per_byte=5.0e-8,
        )
        class_agg.save_as_text_file(self.output_path, bytes_factor=0.6)
        return self.output_path
